package distrib

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"propane/internal/backoff"
	"propane/internal/campaign"
	"propane/internal/chaos"
	"propane/internal/runner"
)

// WorkerOptions parameterises one worker agent.
type WorkerOptions struct {
	// Name identifies the worker to the coordinator. It must be
	// unique within the fleet and stable across this worker's
	// restarts (a restarted worker with the same name and Dir resumes
	// its unit from the local journal instead of re-simulating). Empty
	// selects hostname-pid.
	Name string
	// Dir is the worker's scratch root: each work unit runs in its
	// own subdirectory with the full local journal/checkpoint
	// machinery. Required.
	Dir string
	// Workers is the local campaign parallelism per unit (0 lets the
	// campaign default apply).
	Workers int
	// PollInterval paces lease retries when the coordinator is
	// unreachable, and is the fallback pause after a StatusWait reply
	// carrying no RetryMs hint. A reachable coordinator long-polls
	// lease requests itself and hints an immediate retry, so this
	// interval only governs while the coordinator is down. <= 0
	// selects 1 s.
	PollInterval time.Duration
	// BatchSize is the record-upload chunk size: a completed unit's
	// record set uploads in chunks of this many records (each chunk
	// renews the lease). <= 0 selects 64.
	BatchSize int
	// MaxErrors bounds consecutive failed coordinator round-trips
	// before the worker gives up. While a unit is uploading the worker
	// is more patient — an unreachable coordinator flips it into
	// degraded mode with the full MaxErrors ladder per chunk before it
	// abandons the lease (the local journal retains the work). <= 0
	// selects 10.
	MaxErrors int
	// Encoding selects the /v1/records body encoding: "" negotiates
	// (binary frame when the coordinator advertises it, JSON
	// otherwise), "json" forces per-record JSON — for version-skew
	// drills and debugging with readable wire traffic.
	Encoding string
	// Chaos, when non-nil and enabled, wraps this worker's HTTP
	// client in a fault-injecting chaos.Transport. The worker derives
	// its own seed from Spec.Seed and its name, so one campaign-level
	// seed gives every fleet member an independent, reproducible
	// fault sequence.
	Chaos *chaos.Spec
	// LogInterval throttles local campaign progress lines (0
	// disables them).
	LogInterval time.Duration
	// Memo, when non-nil, backs each unit's pruner with a persistent
	// memo store (internal/store satisfies this): injection runs whose
	// outcome an earlier campaign already established are served from
	// the store instead of simulated. Keys are scoped by the unit's
	// config digest, so only bit-identical campaign configurations
	// share entries.
	Memo runner.MemoStore
	// Logf receives lifecycle lines (nil discards).
	Logf func(format string, args ...any)

	// transport overrides the HTTP transport outright (Chaos is then
	// ignored) — tests inject a chaos.Transport they can interrogate
	// after the run.
	transport http.RoundTripper
}

func (o *WorkerOptions) normalise() error {
	if o.Dir == "" {
		return errors.New("distrib: worker needs a scratch directory")
	}
	if o.Name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		o.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if o.PollInterval <= 0 {
		o.PollInterval = time.Second
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.MaxErrors <= 0 {
		o.MaxErrors = 10
	}
	if o.Encoding != "" && o.Encoding != "json" {
		return fmt.Errorf("distrib: unknown record encoding %q (want \"\" or \"json\")", o.Encoding)
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// httpStatusError is a non-2xx coordinator reply.
type httpStatusError struct {
	status int
	code   string
	msg    string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("coordinator answered %d: %s", e.status, e.msg)
}

// leaseLost reports whether an error is the coordinator disowning the
// lease (409) — the unit belongs to someone else now.
func leaseLost(err error) bool {
	var se *httpStatusError
	return errors.As(err, &se) && se.status == http.StatusConflict
}

// retryableError reports an error worth retrying: transport failures
// (the request may never have arrived), 5xx (the coordinator is
// restarting or overloaded), and digest-mismatch 4xx (the body was
// damaged in flight — our copy is intact).
func retryableError(err error) bool {
	var se *httpStatusError
	if !errors.As(err, &se) {
		return true // transport-level: connection refused/reset/dropped
	}
	return se.status >= 500 || se.code == CodeBodyDigest
}

// fatalStatus reports a reply that retrying cannot fix: a 4xx other
// than lease-conflict (409) and wire damage (CodeBodyDigest).
func fatalStatus(err error) bool {
	var se *httpStatusError
	return errors.As(err, &se) && se.status >= 400 && se.status < 500 &&
		se.status != http.StatusConflict && se.code != CodeBodyDigest
}

// worker is one agent's connection to a coordinator.
type worker struct {
	base   string
	opts   WorkerOptions
	ctx    context.Context
	client *http.Client
	policy backoff.Policy
	// jsonOnly flips permanently when a binary upload is refused —
	// the coordinator predates the frame despite advertising it (or a
	// middlebox strips the content type); JSON always works.
	jsonOnly bool
	// campaign is the current lease's campaign ID, echoed as
	// HeaderCampaign on every unit-scoped request so a multiplexing
	// service can route it. Written only between units (runUnit joins
	// its heartbeat goroutine before returning), so the concurrent
	// reads in that goroutine are safe.
	campaign string
	// describeCache memoises runner.DescribeInstance per work-unit
	// identity — the golden runs behind it are the expensive part.
	describeCache map[string]runner.PlanInfo
}

func newWorker(ctx context.Context, coordinatorURL string, opts WorkerOptions) *worker {
	transport := opts.transport
	if transport == nil && opts.Chaos != nil && opts.Chaos.Enabled() {
		spec := *opts.Chaos
		spec.Seed = chaos.DeriveSeed(spec.Seed, opts.Name)
		transport = chaos.NewTransport(spec, nil, opts.Logf)
		opts.Logf("distrib: worker %s: chaos enabled (%s)", opts.Name, spec.String())
	}
	return &worker{
		base: coordinatorURL,
		opts: opts,
		ctx:  ctx,
		client: &http.Client{
			Timeout:   30 * time.Second,
			Transport: transport,
		},
		policy: backoff.Policy{
			Base:     100 * time.Millisecond,
			Cap:      2 * time.Second,
			Attempts: opts.MaxErrors,
		},
		describeCache: make(map[string]runner.PlanInfo),
	}
}

// send posts one pre-encoded body and decodes the JSON reply. The
// body carries its SHA-256 in HeaderBodyDigest so the coordinator can
// reject wire-damaged deliveries, and — for the mutating endpoints —
// the same digest as HeaderIdempotencyKey so duplicated deliveries
// replay instead of re-executing. Non-2xx replies come back as
// *httpStatusError.
func (w *worker) send(path, contentType string, body []byte, resp any) error {
	sum := sha256.Sum256(body)
	digest := hex.EncodeToString(sum[:])
	hreq, err := http.NewRequestWithContext(w.ctx, http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("distrib: building %s request: %w", path, err)
	}
	hreq.Header.Set("Content-Type", contentType)
	hreq.Header.Set(HeaderBodyDigest, digest)
	if path == PathRecords || path == PathComplete {
		hreq.Header.Set(HeaderIdempotencyKey, digest)
	}
	if w.campaign != "" && path != PathLease {
		hreq.Header.Set(HeaderCampaign, w.campaign)
	}
	r, err := w.client.Do(hreq)
	if err != nil {
		return fmt.Errorf("distrib: %s: %w", path, err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var er errorResponse
		data, _ := io.ReadAll(io.LimitReader(r.Body, 4096))
		if json.Unmarshal(data, &er) != nil || er.Error == "" {
			er.Error = string(data)
		}
		return &httpStatusError{status: r.StatusCode, code: er.Code, msg: er.Error}
	}
	if resp == nil {
		return nil
	}
	if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
		return fmt.Errorf("distrib: decoding %s reply: %w", path, err)
	}
	return nil
}

// post sends one JSON request.
func (w *worker) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("distrib: encoding %s request: %w", path, err)
	}
	return w.send(path, ContentTypeJSON, body, resp)
}

// sendRetry retries transient failures — network errors, 5xx,
// wire-damage 4xx — under the shared full-jitter backoff policy,
// bounded to the given number of attempts (<= 0 selects MaxErrors).
// Non-retryable statuses return immediately, and a cancelled context
// aborts the wait mid-backoff.
func (w *worker) sendRetry(path, contentType string, body []byte, resp any, attempts int) error {
	pol := w.policy
	if attempts > 0 {
		pol.Attempts = attempts
	}
	pol.OnRetry = func(attempt int, delay time.Duration, err error) {
		w.opts.Logf("distrib: worker %s: %s attempt %d failed (%v), retrying in %v",
			w.opts.Name, path, attempt+1, err, delay)
	}
	return pol.Do(w.ctx, retryableError, func() error { return w.send(path, contentType, body, resp) })
}

// postRetry is sendRetry for a JSON request.
func (w *worker) postRetry(path string, req, resp any, attempts int) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("distrib: encoding %s request: %w", path, err)
	}
	return w.sendRetry(path, ContentTypeJSON, body, resp, attempts)
}

// sleep pauses for d unless the context ends first, reporting whether
// the full pause elapsed.
func (w *worker) sleep(d time.Duration) bool {
	if d <= 0 {
		return w.ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-w.ctx.Done():
		return false
	}
}

// RunWorker joins the fleet of the coordinator at coordinatorURL with
// a background context; see RunWorkerContext.
func RunWorker(coordinatorURL string, opts WorkerOptions) error {
	return RunWorkerContext(context.Background(), coordinatorURL, opts)
}

// RunWorkerContext joins the fleet of the coordinator at
// coordinatorURL and processes work units until the campaign
// completes (returns nil), ctx is cancelled (returns ctx.Err()), or
// the worker fails fatally: coordinator unreachable past MaxErrors
// consecutive lease attempts, config-digest mismatch (version skew),
// or a local execution error. A lost lease is not fatal — the worker
// abandons the unit and asks for new work. A coordinator that becomes
// unreachable while a unit executes is not fatal either: the records
// live in the worker's local journal, execution continues, and the
// upload phase degrades gracefully until the coordinator returns.
func RunWorkerContext(ctx context.Context, coordinatorURL string, opts WorkerOptions) error {
	if err := opts.normalise(); err != nil {
		return err
	}
	w := newWorker(ctx, coordinatorURL, opts)
	consecutive := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lr LeaseResponse
		if err := w.post(PathLease, LeaseRequest{Worker: opts.Name}, &lr); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			consecutive++
			if consecutive >= opts.MaxErrors {
				return fmt.Errorf("distrib: worker %s: %d consecutive lease failures, last: %w",
					opts.Name, consecutive, err)
			}
			if !w.sleep(w.policy.Delay(consecutive - 1)) {
				return ctx.Err()
			}
			continue
		}
		consecutive = 0
		switch lr.Status {
		case StatusDone:
			opts.Logf("distrib: worker %s: campaign complete", opts.Name)
			return nil
		case StatusWait:
			// The coordinator already parked this request in its
			// long-poll; trust its hint — it is deliberately immediate
			// so the worker bounces straight back into another
			// long-poll instead of sleeping through a unit becoming
			// available.
			wait := time.Duration(lr.RetryMs) * time.Millisecond
			if wait <= 0 {
				wait = opts.PollInterval
			}
			if !w.sleep(wait) {
				return ctx.Err()
			}
		case StatusUnit:
			if lr.Unit == nil {
				return fmt.Errorf("distrib: worker %s: unit lease %s carried no unit", opts.Name, lr.LeaseID)
			}
			if err := w.runUnit(lr); err != nil {
				return fmt.Errorf("distrib: worker %s: %w", opts.Name, err)
			}
		default:
			return fmt.Errorf("distrib: worker %s: unknown lease status %q", opts.Name, lr.Status)
		}
	}
}

// describe resolves and digests the unit's campaign through this
// worker's own registry, memoised per identity. A unit naming an
// instance this worker has never heard of but carrying its topology
// document compiles and registers the document first — the config
// digest check downstream still guards against a divergent
// compilation.
func (w *worker) describe(u *WorkUnit) (runner.PlanInfo, error) {
	key := fmt.Sprintf("%s|%s|%d|%t|%g", u.Instance, u.Tier, u.RunBudgetSteps, u.Adaptive, u.CIEpsilon)
	if info, ok := w.describeCache[key]; ok {
		return info, nil
	}
	if _, err := runner.Lookup(u.Instance); err != nil && u.Document != "" {
		def, derr := runner.LoadSynthBytes([]byte(u.Document), u.Instance)
		if derr != nil {
			return runner.PlanInfo{}, fmt.Errorf("distrib: compiling unit document for %s: %w", u.Instance, derr)
		}
		// A registration race with a sibling worker goroutine loses
		// benignly: the winner registered byte-identical content.
		_ = runner.Register(def)
	}
	info, err := runner.DescribeInstance(u.Instance, runner.Tier(u.Tier), w.unitOptions(u))
	if err != nil {
		return runner.PlanInfo{}, err
	}
	w.describeCache[key] = info
	return info, nil
}

// unitOptions maps the digest-relevant fields a work unit carries onto
// runner options, so the worker's describe and execution paths agree
// with the coordinator's digest by construction.
func (w *worker) unitOptions(u *WorkUnit) runner.Options {
	opts := runner.Options{RunBudgetSteps: u.RunBudgetSteps}
	if u.Adaptive {
		opts.Adaptive = campaign.AdaptiveForce
		opts.CIEpsilon = u.CIEpsilon
	}
	return opts
}

// scratchDir is the unit's local artifact directory. The worker name
// is part of the path so two fleet members sharing a filesystem (or
// one process hosting a loopback fleet) never append the same local
// journal; the job range is part of the path so a restarted worker
// resumes exactly its own prior work (carve events replay from the
// coordinator's assignment journal, so ranges are stable across
// coordinator restarts too). Adaptive units carry an explicit job
// list instead of a range, and lists are not pinned across
// coordinator restarts — the path keys on the list's content digest,
// so a re-leased identical list resumes and a different list gets a
// fresh directory.
func (w *worker) scratchDir(u *WorkUnit) string {
	digest8 := u.ConfigDigest
	if len(digest8) > 8 {
		digest8 = digest8[:8]
	}
	unitDir := fmt.Sprintf("unit-%d-%d", u.JobLo, u.JobHi)
	if u.JobList != nil {
		unitDir = "unit-" + jobListDigest(u.JobList)
	}
	return filepath.Join(w.opts.Dir, w.opts.Name,
		fmt.Sprintf("%s-%s-%s", u.Instance, u.Tier, digest8),
		unitDir)
}

// jobListDigest content-addresses a unit's job list (order ignored —
// the list is a set; claim order is a dispatch detail).
func jobListDigest(jobs []int) string {
	sorted := make([]int, len(jobs))
	copy(sorted, jobs)
	sort.Ints(sorted)
	h := sha256.New()
	for _, job := range sorted {
		fmt.Fprintf(h, "%d\n", job)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// liveAttempts is the per-chunk retry budget while the coordinator is
// believed reachable; a chunk that exhausts it flips the upload into
// degraded mode, which escalates to the full MaxErrors ladder (the
// work is done and journaled — patience is cheap, re-execution is
// not).
const liveAttempts = 3

// unitOutcome aggregates a record set for the digest-only completion.
func unitOutcome(recs []runner.Record) (outcomes map[string]int, pruned, memoized, storeMemo, converged int) {
	outcomes = make(map[string]int, 4)
	for _, rec := range recs {
		outcomes[outcomeKey(rec)]++
		switch rec.Pruned {
		case campaign.PrunedNoOp, campaign.PrunedUnfired:
			pruned++
		case campaign.PrunedMemoized:
			memoized++
		case campaign.PrunedMemoStore:
			memoized++
			storeMemo++
		case campaign.PrunedConverged:
			converged++
		}
	}
	return outcomes, pruned, memoized, storeMemo, converged
}

// encodeChunk builds one /v1/records body in the negotiated encoding.
// The returned release func recycles the pooled buffer backing a
// binary frame (nil-safe, no-op for JSON).
func (w *worker) encodeChunk(leaseID string, recs []runner.Record, binary bool) (body []byte, contentType string, release func(), err error) {
	batch := RecordBatch{LeaseID: leaseID, Records: recs}
	if binary {
		buf := acquireBuffer()
		if err := encodeRecordBatch(buf, batch); err != nil {
			releaseBuffer(buf)
			return nil, "", nil, err
		}
		return buf.Bytes(), ContentTypeBinary, func() { releaseBuffer(buf) }, nil
	}
	data, err := json.Marshal(batch)
	if err != nil {
		return nil, "", nil, fmt.Errorf("distrib: encoding record batch: %w", err)
	}
	return data, ContentTypeJSON, func() {}, nil
}

// runUnit executes one leased work unit through the local supervised
// runner — journaled, checkpointed and resumable in the unit's
// scratch directory — heartbeating progress while it simulates, and
// finishes with a digest-only completion. Only when the coordinator
// answers NeedRecords (the steady state: it holds nothing for a
// freshly executed unit) does the record set upload, in one bulk pass
// of BatchSize chunks. The coordinator is therefore entirely off the
// hot path while runs execute: no mid-run streaming, no per-record
// coordinator journaling, just cheap heartbeats.
func (w *worker) runUnit(lr LeaseResponse) error {
	u := lr.Unit
	info, err := w.describe(u)
	if err != nil {
		return err
	}
	if info.Digest != u.ConfigDigest {
		return fmt.Errorf("local config digest %s does not match coordinator's %s for %s/%s — version skew: %w",
			info.Digest, u.ConfigDigest, u.Instance, u.Tier, runner.ErrDigestMismatch)
	}
	def, err := runner.Lookup(u.Instance)
	if err != nil {
		return err
	}
	cfg, err := def.Config(runner.Tier(u.Tier))
	if err != nil {
		return err
	}

	w.campaign = lr.Campaign
	defer func() { w.campaign = "" }()
	w.opts.Logf("distrib: worker %s: running unit %d [%d,%d) (%s, %d of %d jobs pre-done)",
		w.opts.Name, u.Unit, u.JobLo, u.JobHi, lr.LeaseID, len(u.DoneJobs), u.Jobs())
	excluded := make(map[int]bool, len(u.DoneJobs))
	for _, job := range u.DoneJobs {
		excluded[job] = true
	}
	// member decides unit membership: the explicit job list for
	// adaptive units, the contiguous range otherwise.
	member := func(job int) bool { return job >= u.JobLo && job < u.JobHi }
	if u.JobList != nil {
		set := make(map[int]bool, len(u.JobList))
		for _, job := range u.JobList {
			set[job] = true
		}
		member = func(job int) bool { return set[job] }
	}

	// lost flips once the coordinator disowns the lease; the Abort
	// hook then drains the local campaign without error, and the
	// upload phase stops. progress feeds the heartbeat's Done field.
	var lost atomic.Bool
	var progress atomic.Int64
	recs := make([]runner.Record, 0, u.Jobs()-len(u.DoneJobs))

	// Heartbeat at a third of the TTL for the whole lease — execution
	// and upload — so a long simulation (or a slow upload of a big
	// unit) keeps the lease alive.
	ttl := time.Duration(lr.TTLMs) * time.Millisecond
	hbEvery := ttl / 3
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	stopHB := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			select {
			case <-stopHB:
				return
			case <-w.ctx.Done():
				return
			case <-t.C:
				var hr HeartbeatResponse
				req := HeartbeatRequest{LeaseID: lr.LeaseID, Done: int(progress.Load())}
				if err := w.post(PathHeartbeat, req, &hr); err != nil {
					if leaseLost(err) || fatalStatus(err) {
						lost.Store(true)
						return
					}
					// Transient: the next tick renews the lease.
				}
			}
		}
	}()
	defer func() {
		select {
		case <-stopHB:
		default:
			close(stopHB)
		}
		<-hbDone
	}()

	start := time.Now()
	runOpts := w.unitOptions(u)
	runOpts.Name = u.Instance
	runOpts.Tier = runner.Tier(u.Tier)
	runOpts.Dir = w.scratchDir(u)
	runOpts.Resume = true
	runOpts.Workers = w.opts.Workers
	runOpts.LogInterval = w.opts.LogInterval
	runOpts.Memo = w.opts.Memo
	runOpts.Logf = w.opts.Logf
	// The unit scratch is an intermediate artifact; the final report
	// renders once, from the coordinator's assembly.
	runOpts.SkipReport = true
	// The unit is a fixed job set; jobs the coordinator already holds
	// are excluded so a reassigned unit fast-forwards. (For adaptive
	// units the coordinator made the scheduling decisions — the worker
	// executes the assigned set verbatim; runner.Run keeps the adaptive
	// digest but skips its own scheduler when ExcludeJobs is set.)
	runOpts.ExcludeJobs = func(job int) bool {
		return !member(job) || excluded[job]
	}
	runOpts.Abort = func() bool { return lost.Load() || w.ctx.Err() != nil }
	// OnRecord runs on the serial observer path: replayed delivery
	// re-collects records a previous incarnation of this worker
	// journaled locally, so a restarted worker still uploads its full
	// set.
	runOpts.OnRecord = func(rec runner.Record, replayed bool) error {
		recs = append(recs, rec)
		progress.Add(1)
		return nil
	}
	_, runErr := runner.Run(cfg, runOpts)
	wallMs := time.Since(start).Milliseconds()
	if runErr != nil {
		return runErr
	}
	if err := w.ctx.Err(); err != nil {
		return err
	}
	if lost.Load() {
		w.opts.Logf("distrib: worker %s: lease %s lost — abandoning unit %d [%d,%d); the local journal retains the work",
			w.opts.Name, lr.LeaseID, u.Unit, u.JobLo, u.JobHi)
		return nil
	}

	// Digest-only completion. The digest only describes a complete
	// set: with DoneJobs the unit's records are split between worker
	// and coordinator, and per-record content keying covers the
	// upload instead.
	outcomes, pruned, memoized, storeMemo, converged := unitOutcome(recs)
	creq := CompleteRequest{
		LeaseID:   lr.LeaseID,
		Runs:      len(recs),
		WallMs:    wallMs,
		Outcomes:  outcomes,
		Pruned:    pruned,
		Memoized:  memoized,
		StoreMemo: storeMemo,
		Converged: converged,
	}
	if len(u.DoneJobs) == 0 {
		creq.Digest = runner.RecordSetDigest(recs)
	}
	cr, abandon, err := w.complete(lr, creq)
	if err != nil || abandon {
		return err
	}
	if cr.NeedRecords {
		if abandon, err := w.uploadRecords(lr, recs, &lost); err != nil || abandon {
			return err
		}
		creq.Uploaded = true
		cr, abandon, err = w.complete(lr, creq)
		if err != nil || abandon {
			return err
		}
		if cr.NeedRecords {
			// The coordinator still wants records after a full upload —
			// nothing more this worker can add. Abandon; the lease
			// expires and the gap reassigns.
			w.opts.Logf("distrib: worker %s: coordinator still needs records for unit %d after upload — abandoning lease",
				w.opts.Name, u.Unit)
			return nil
		}
	}
	w.opts.Logf("distrib: worker %s: unit %d [%d,%d) complete (%d runs, %d ms)",
		w.opts.Name, u.Unit, u.JobLo, u.JobHi, len(recs), wallMs)
	return nil
}

// complete posts one completion request. abandon reports a
// non-fatal dead end (lease lost, coordinator unreachable past the
// retry budget): the worker drops the unit and asks for new work,
// with the local journal retaining everything it did.
func (w *worker) complete(lr LeaseResponse, creq CompleteRequest) (cr CompleteResponse, abandon bool, err error) {
	if err := w.postRetry(PathComplete, creq, &cr, 0); err != nil {
		if leaseLost(err) {
			w.opts.Logf("distrib: worker %s: complete for %s rejected — unit reassigned", w.opts.Name, lr.LeaseID)
			return cr, true, nil
		}
		if fatalStatus(err) || w.ctx.Err() != nil {
			return cr, false, err
		}
		w.opts.Logf("distrib: worker %s: complete for %s undeliverable (%v) — abandoning lease; the local journal retains the work",
			w.opts.Name, lr.LeaseID, err)
		return cr, true, nil
	}
	return cr, false, nil
}

// uploadRecords bulk-uploads a completed unit's record set in
// BatchSize chunks, in the negotiated encoding. An unreachable
// coordinator degrades the upload instead of failing it: the chunk
// retries under the full MaxErrors ladder, and only two consecutive
// exhausted ladders abandon the lease (abandon=true) — the local
// journal retains the records, so a later lease of the same range
// fast-forwards straight back here.
func (w *worker) uploadRecords(lr LeaseResponse, recs []runner.Record, lost *atomic.Bool) (abandon bool, err error) {
	binary := lr.Binary && w.opts.Encoding != "json" && !w.jsonOnly
	degraded := false
	exhausted := 0
	for off := 0; off < len(recs); {
		if lost.Load() {
			w.opts.Logf("distrib: worker %s: lease %s lost mid-upload — abandoning; the local journal retains the work",
				w.opts.Name, lr.LeaseID)
			return true, nil
		}
		end := off + w.opts.BatchSize
		if end > len(recs) {
			end = len(recs)
		}
		body, contentType, release, err := w.encodeChunk(lr.LeaseID, recs[off:end], binary)
		if err != nil {
			return false, err
		}
		attempts := liveAttempts
		if degraded {
			attempts = w.opts.MaxErrors
		}
		var br BatchResponse
		sendErr := w.sendRetry(PathRecords, contentType, body, &br, attempts)
		release()
		if sendErr == nil {
			if degraded {
				degraded = false
				w.opts.Logf("distrib: worker %s: coordinator reachable again — upload resumed", w.opts.Name)
			}
			exhausted = 0
			off = end
			continue
		}
		if leaseLost(sendErr) {
			w.opts.Logf("distrib: worker %s: lease %s lost mid-upload — abandoning; the local journal retains the work",
				w.opts.Name, lr.LeaseID)
			return true, nil
		}
		if binary && fatalStatus(sendErr) {
			// The coordinator refuses the binary frame (version skew,
			// or a middlebox mangled the content type): fall back to
			// JSON permanently and retry this chunk.
			w.opts.Logf("distrib: worker %s: binary record frame refused (%v) — falling back to JSON",
				w.opts.Name, sendErr)
			w.jsonOnly = true
			binary = false
			continue
		}
		if fatalStatus(sendErr) || w.ctx.Err() != nil {
			return false, sendErr
		}
		if !degraded {
			w.opts.Logf("distrib: worker %s: coordinator unreachable (%v) — degrading: upload pauses on the local journal and retries patiently",
				w.opts.Name, sendErr)
			degraded = true
		}
		exhausted++
		if exhausted >= 2 {
			w.opts.Logf("distrib: worker %s: upload for %s undeliverable after %d retry ladders — abandoning lease; the local journal retains the work",
				w.opts.Name, lr.LeaseID, exhausted)
			return true, nil
		}
	}
	return false, nil
}
