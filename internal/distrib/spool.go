package distrib

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"propane/internal/runner"
)

// spool is the worker's durable overflow queue: record batches the
// coordinator could not be reached for land here (one JSON line per
// record, fsynced per append) and drain oldest-first once delivery
// works again. The unit's local journal already holds every record —
// a worker that dies with a non-empty spool replays the journal on
// restart and re-streams everything — so the spool's job is purely to
// let the *current* incarnation keep executing at full speed while
// the coordinator is away, without growing an unbounded in-memory
// queue that a crash would take down untraced.
type spool struct {
	path  string
	f     *os.File
	queue []runner.Record
}

// openSpool creates (or truncates) the spool file at path. Any
// leftover content belongs to a previous incarnation whose records the
// local journal replay re-streams anyway.
func openSpool(path string) (*spool, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("distrib: creating spool directory: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("distrib: opening spool %s: %w", path, err)
	}
	return &spool{path: path, f: f}, nil
}

func (s *spool) len() int { return len(s.queue) }

// append journals the batch to the spool file and queues it for the
// next drain.
func (s *spool) append(recs []runner.Record) error {
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("distrib: encoding spool record: %w", err)
		}
		if _, err := s.f.Write(append(line, '\n')); err != nil {
			return fmt.Errorf("distrib: appending to spool %s: %w", s.path, err)
		}
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("distrib: syncing spool %s: %w", s.path, err)
	}
	s.queue = append(s.queue, recs...)
	return nil
}

// drain delivers the queue oldest-first in batches of at most
// batchSize. Delivered records leave the queue even when a later
// batch fails; the file is rewritten to match whatever remains, so
// the spool never re-delivers what the coordinator acknowledged.
func (s *spool) drain(batchSize int, deliver func([]runner.Record) error) error {
	if batchSize <= 0 {
		batchSize = 64
	}
	var deliverErr error
	for len(s.queue) > 0 {
		n := batchSize
		if n > len(s.queue) {
			n = len(s.queue)
		}
		if deliverErr = deliver(s.queue[:n]); deliverErr != nil {
			break
		}
		s.queue = s.queue[n:]
	}
	if err := s.rewrite(); err != nil && deliverErr == nil {
		deliverErr = err
	}
	return deliverErr
}

// rewrite replaces the spool file's contents with the current queue.
func (s *spool) rewrite() error {
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("distrib: truncating spool %s: %w", s.path, err)
	}
	if _, err := s.f.Seek(0, 0); err != nil {
		return fmt.Errorf("distrib: rewinding spool %s: %w", s.path, err)
	}
	if len(s.queue) == 0 {
		return s.f.Sync()
	}
	queue := s.queue
	s.queue = nil
	return s.append(queue)
}

func (s *spool) close() {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
}

// remove deletes the spool file (the unit completed — nothing left to
// replay).
func (s *spool) remove() {
	s.close()
	os.Remove(s.path)
}
