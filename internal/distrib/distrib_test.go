package distrib

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"propane/internal/report"
	"propane/internal/runner"
)

// fingerprint reduces a result to what the bit-identity criterion
// cares about: the permeability matrix (bit-identical CSV) and the
// raw run counts.
func fingerprint(rr *runner.RunResult) (string, int, int) {
	return report.MatrixCSV(rr.Result.Matrix), rr.Result.Runs, rr.Result.Unfired
}

// baseline runs the reference campaign once per test binary: the
// single-node result every distributed run must reproduce exactly.
var (
	baselineOnce    sync.Once
	baselineMatrix  string
	baselineRuns    int
	baselineUnfired int
	baselineErr     error
)

func baseline(t *testing.T) (string, int, int) {
	t.Helper()
	baselineOnce.Do(func() {
		dir, err := os.MkdirTemp("", "propane-direct-*")
		if err != nil {
			baselineErr = err
			return
		}
		defer os.RemoveAll(dir)
		rr, err := runner.RunInstance("reduced", runner.TierQuick, runner.Options{Dir: dir})
		if err != nil {
			baselineErr = err
			return
		}
		baselineMatrix, baselineRuns, baselineUnfired = fingerprint(rr)
	})
	if baselineErr != nil {
		t.Fatal(baselineErr)
	}
	return baselineMatrix, baselineRuns, baselineUnfired
}

// assertMatchesBaseline fails unless rr is bit-identical to the
// single-node run.
func assertMatchesBaseline(t *testing.T, rr *runner.RunResult) {
	t.Helper()
	wantM, wantR, wantU := baseline(t)
	gotM, gotR, gotU := fingerprint(rr)
	if gotR != wantR || gotU != wantU {
		t.Errorf("assembled counts = (%d runs, %d unfired), direct = (%d, %d)", gotR, gotU, wantR, wantU)
	}
	if gotM != wantM {
		t.Errorf("assembled permeability matrix differs from the direct run:\n--- direct ---\n%s\n--- assembled ---\n%s", wantM, gotM)
	}
}

// serveCoordinator starts c's HTTP API on an ephemeral loopback
// listener, returning the base URL and the server for shutdown.
func serveCoordinator(t *testing.T, c *Coordinator) (string, *http.Server) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(c.Handler())
	go srv.Serve(l)
	return "http://" + l.Addr().String(), srv
}

// TestLoopbackMatchesDirect is the subsystem's core guarantee: the
// paper campaign decomposed into units, executed by a fleet over real
// HTTP, and reassembled, is bit-identical to a single-node run.
func TestLoopbackMatchesDirect(t *testing.T) {
	rr, err := Loopback(Config{
		Instance: "reduced",
		Tier:     runner.TierQuick,
		Dir:      t.TempDir(),
		Units:    4,
		Logf:     t.Logf,
	}, 2, WorkerOptions{BatchSize: 8, PollInterval: 50 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesBaseline(t, rr)
}

// runPartialWorker drives the real wire protocol by hand: lease a
// unit, stream maxStream records (the v1 JSON mid-run streaming path,
// which protocol v2 still accepts), then vanish without a heartbeat
// or complete — a worker killed mid-lease. Returns how many records
// the coordinator received and the leased unit's id.
func runPartialWorker(t *testing.T, url, scratch string, maxStream int) (streamed, unitID int) {
	t.Helper()
	w := &worker{
		base:          url,
		opts:          WorkerOptions{Name: "dying", Dir: scratch, Logf: t.Logf},
		ctx:           context.Background(),
		client:        &http.Client{Timeout: 10 * time.Second},
		describeCache: make(map[string]runner.PlanInfo),
	}
	if err := w.opts.normalise(); err != nil {
		t.Fatal(err)
	}
	var lr LeaseResponse
	if err := w.post(PathLease, LeaseRequest{Worker: w.opts.Name}, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Status != StatusUnit {
		t.Fatalf("partial worker got lease status %q, want %q", lr.Status, StatusUnit)
	}
	u := lr.Unit
	def, err := runner.Lookup(u.Instance)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := def.Config(runner.Tier(u.Tier))
	if err != nil {
		t.Fatal(err)
	}
	member := func(job int) bool { return job >= u.JobLo && job < u.JobHi }
	if u.JobList != nil {
		set := make(map[int]bool, len(u.JobList))
		for _, job := range u.JobList {
			set[job] = true
		}
		member = func(job int) bool { return set[job] }
	}
	var stop atomic.Bool
	count := 0
	ro := w.unitOptions(u)
	ro.Name = u.Instance
	ro.Tier = runner.Tier(u.Tier)
	ro.Dir = w.scratchDir(u)
	ro.Resume = true
	ro.Workers = 1
	ro.SkipReport = true
	ro.ExcludeJobs = func(job int) bool { return !member(job) }
	ro.Abort = func() bool { return stop.Load() }
	ro.OnRecord = func(rec runner.Record, replayed bool) error {
		if count >= maxStream {
			stop.Store(true)
			return nil
		}
		var br BatchResponse
		if err := w.post(PathRecords, RecordBatch{LeaseID: lr.LeaseID, Records: []runner.Record{rec}}, &br); err != nil {
			return err
		}
		count++
		if count >= maxStream {
			stop.Store(true)
		}
		return nil
	}
	_, err = runner.Run(cfg, ro)
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("partial worker streamed nothing — the test needs partial progress on the unit")
	}
	return count, u.Unit
}

// TestLeaseExpiryReassignment kills a worker mid-lease and asserts
// the fleet reclaims the unit after the TTL: the unit is leased a
// second time, the dead worker's streamed records are not
// re-executed, and the assembled matrix is still bit-identical.
func TestLeaseExpiryReassignment(t *testing.T) {
	dir := t.TempDir()
	coord, err := NewCoordinator(Config{
		Instance: "reduced",
		Tier:     runner.TierQuick,
		Dir:      dir,
		Units:    3,
		LeaseTTL: 750 * time.Millisecond,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	url, srv := serveCoordinator(t, coord)
	defer srv.Close()

	streamed, unitID := runPartialWorker(t, url, filepath.Join(dir, "scratch"), 2)

	const fleet = 3
	errs := make(chan error, fleet)
	for i := 0; i < fleet; i++ {
		name := fmt.Sprintf("w%d", i+1)
		go func() {
			errs <- RunWorker(url, WorkerOptions{
				Name:         name,
				Dir:          filepath.Join(dir, "scratch"),
				BatchSize:    4,
				PollInterval: 100 * time.Millisecond,
				Logf:         t.Logf,
			})
		}()
	}
	select {
	case <-coord.Done():
	case <-time.After(2 * time.Minute):
		t.Fatal("campaign did not complete — expired lease never reassigned?")
	}
	for i := 0; i < fleet; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	st := coord.Status()
	if got := st.UnitsDetail[unitID].Attempts; got < 2 {
		t.Errorf("unit %d leased %d times, want >= 2 (expiry should have reassigned it)", unitID, got)
	}
	m := coord.Metrics()
	if m.ReceivedRuns != m.TotalRuns {
		t.Errorf("coordinator received %d live runs, want %d", m.ReceivedRuns, m.TotalRuns)
	}
	_ = streamed // progress asserted inside runPartialWorker

	rr, err := coord.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesBaseline(t, rr)
}

// TestLeaseLongPollPromptness pins the idle-wait fix: with the fleet's
// only unit leased to a silent worker, a second worker's lease request
// parks inside the coordinator's long-poll and is answered with the
// reclaimed unit in one round-trip as soon as the lease expires —
// instead of bouncing through sleep/retry cycles and discovering the
// free unit a poll interval late.
func TestLeaseLongPollPromptness(t *testing.T) {
	dir := t.TempDir()
	const ttl = 500 * time.Millisecond
	coord, err := NewCoordinator(Config{
		Instance: "reduced",
		Tier:     runner.TierQuick,
		Dir:      dir,
		Units:    1,
		LeaseTTL: ttl,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	url, srv := serveCoordinator(t, coord)
	defer srv.Close()

	w := &worker{
		base:   url,
		opts:   WorkerOptions{Name: "probe", Dir: dir, Logf: t.Logf},
		ctx:    context.Background(),
		client: &http.Client{Timeout: 30 * time.Second},
	}
	var a LeaseResponse
	if err := w.post(PathLease, LeaseRequest{Worker: "silent"}, &a); err != nil {
		t.Fatal(err)
	}
	if a.Status != StatusUnit {
		t.Fatalf("first lease got status %q, want %q", a.Status, StatusUnit)
	}

	// The silent worker never heartbeats; the eager one's request must
	// hold until the TTL reclaims the unit, then return it directly.
	start := time.Now()
	var b LeaseResponse
	if err := w.post(PathLease, LeaseRequest{Worker: "eager"}, &b); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if b.Status != StatusUnit {
		t.Fatalf("parked lease got status %q after %v, want the expired unit", b.Status, elapsed)
	}
	if b.Unit == nil || b.Unit.Unit != a.Unit.Unit {
		t.Fatalf("parked lease returned unit %+v, want unit %d", b.Unit, a.Unit.Unit)
	}
	if elapsed < ttl/2 {
		t.Errorf("unit handed over after %v, before the %v lease could expire", elapsed, ttl)
	}
	if elapsed > ttl+2*time.Second {
		t.Errorf("parked lease answered after %v — long-poll did not wake on expiry (TTL %v)", elapsed, ttl)
	}
}

// TestCoordinatorCrashRestart kills both sides mid-campaign: a worker
// dies after streaming part of its unit, then the coordinator "dies"
// (server closed, files closed) and restarts with Resume — restoring
// the streamed records from its journals — and the dead worker
// restarts under its old identity and scratch, replaying its local
// journal. The reassembled result is bit-identical.
func TestCoordinatorCrashRestart(t *testing.T) {
	dir := t.TempDir()
	cc := Config{
		Instance: "reduced",
		Tier:     runner.TierQuick,
		Dir:      dir,
		Units:    3,
		LeaseTTL: 2 * time.Second,
		Logf:     t.Logf,
	}
	coord, err := NewCoordinator(cc)
	if err != nil {
		t.Fatal(err)
	}
	url, srv := serveCoordinator(t, coord)
	streamed, unitID := runPartialWorker(t, url, filepath.Join(dir, "scratch"), 2)

	srv.Close()
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}

	cc.Resume = true
	coord2, err := NewCoordinator(cc)
	if err != nil {
		t.Fatal(err)
	}
	st := coord2.Status()
	if st.DoneRuns != streamed {
		t.Fatalf("restarted coordinator restored %d runs, want %d", st.DoneRuns, streamed)
	}
	if st.UnitsDetail[unitID].DoneRuns != streamed {
		t.Fatalf("restarted coordinator restored %d runs on unit %d, want %d", st.UnitsDetail[unitID].DoneRuns, unitID, streamed)
	}
	url2, srv2 := serveCoordinator(t, coord2)
	defer srv2.Close()

	// The worker restarts with its old name and scratch root, so its
	// local journal replays: records the coordinator never received
	// re-stream, records it already holds arrive as verified
	// duplicates.
	if err := RunWorker(url2, WorkerOptions{
		Name:         "dying",
		Dir:          filepath.Join(dir, "scratch"),
		BatchSize:    4,
		PollInterval: 50 * time.Millisecond,
		Logf:         t.Logf,
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-coord2.Done():
	default:
		t.Fatal("worker exited but the campaign is not complete")
	}

	m := coord2.Metrics()
	if m.ResumedRuns != streamed {
		t.Errorf("metrics count %d resumed runs, want %d", m.ResumedRuns, streamed)
	}
	if m.ReceivedRuns != m.TotalRuns-streamed {
		t.Errorf("metrics count %d live runs, want %d (resumed records must not re-execute)",
			m.ReceivedRuns, m.TotalRuns-streamed)
	}

	rr, err := coord2.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesBaseline(t, rr)
}

// TestPaperCampaignLoopback is the acceptance run at production
// scale: the paper's full 52 000-run campaign through coordinator +
// 3 loopback workers, bit-identical to a single-node RunInstance.
// Gated behind PROPANE_PAPER_TEST=1 (minutes of CPU); the kill/
// restart machinery this relies on is pinned at quick scale by
// TestLeaseExpiryReassignment and TestCoordinatorCrashRestart.
func TestPaperCampaignLoopback(t *testing.T) {
	if os.Getenv("PROPANE_PAPER_TEST") == "" {
		t.Skip("set PROPANE_PAPER_TEST=1 to run the full paper campaign through the distributed path")
	}
	direct, err := runner.RunInstance("paper", runner.TierFull, runner.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Loopback(Config{
		Instance: "paper",
		Tier:     runner.TierFull,
		Dir:      t.TempDir(),
		Units:    8,
		Logf:     t.Logf,
	}, 3, WorkerOptions{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	wantM, wantR, wantU := fingerprint(direct)
	gotM, gotR, gotU := fingerprint(rr)
	if gotR != wantR || gotU != wantU {
		t.Errorf("assembled counts = (%d runs, %d unfired), direct = (%d, %d)", gotR, gotU, wantR, wantU)
	}
	if gotM != wantM {
		t.Error("assembled paper-campaign matrix differs from the single-node run")
	}
}

// TestFreshDirRefusesExistingJournal pins the guard against silently
// mixing campaigns: a coordinator without Resume refuses a directory
// holding journal records.
func TestFreshDirRefusesExistingJournal(t *testing.T) {
	dir := t.TempDir()
	cc := Config{
		Instance: "reduced",
		Tier:     runner.TierQuick,
		Dir:      dir,
		Units:    2,
		Logf:     t.Logf,
	}
	coord, err := NewCoordinator(cc)
	if err != nil {
		t.Fatal(err)
	}
	url, srv := serveCoordinator(t, coord)
	runPartialWorker(t, url, filepath.Join(dir, "scratch"), 1)
	srv.Close()
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(cc); err == nil {
		t.Fatal("coordinator reused a directory with journal records without Resume")
	}
}
