package distrib

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"propane/internal/runner"
)

// codecBatch is a record batch exercising every field the frame
// carries: empty and repeated strings, negative integers, flag
// combinations, and multi-entry diff maps.
func codecBatch() RecordBatch {
	return RecordBatch{
		LeaseID: "L0042-u7",
		Records: []runner.Record{
			{Type: "golden", Job: 0, Module: "engine", Signal: "rpm", Model: "", Outcome: "ok"},
			{Type: "run", Job: 1, Module: "engine", Signal: "rpm", AtMs: 1500, Model: "bitflip",
				Case: 3, Fired: true, FiredAtMs: 1502, Outcome: "deviation", Attempts: 2,
				Diffs: map[string]runner.DiffRecord{
					"out.torque": {FirstMs: 1502, LastMs: 1900, Count: 17},
					"out.rpm":    {FirstMs: 1510, LastMs: 1890, Count: 3},
				}},
			{Type: "run", Job: 2, Module: "gearbox", Signal: "ratio", AtMs: -1, Model: "stuck",
				Case: -4, SystemFailure: true, FailureAtMs: 2200, Outcome: "crash",
				Detail: "watchdog: budget exhausted", Attempts: 1},
			{Type: "run", Job: 3, Module: "engine", Signal: "rpm", Model: "bitflip",
				Outcome: "ok", Pruned: "memoized"},
		},
	}
}

// TestRecordBatchRoundTrip proves the binary frame carries every
// record field losslessly.
func TestRecordBatchRoundTrip(t *testing.T) {
	want := codecBatch()
	var buf bytes.Buffer
	if err := encodeRecordBatch(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := decodeRecordBatch(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.LeaseID != want.LeaseID {
		t.Errorf("lease id %q, want %q", got.LeaseID, want.LeaseID)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("decoded %d records, want %d", len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		if !reflect.DeepEqual(got.Records[i], want.Records[i]) {
			t.Errorf("record %d round-tripped as\n%+v\nwant\n%+v", i, got.Records[i], want.Records[i])
		}
	}
	releaseRecords(got.Records)
}

// TestFrameDeterministic pins frame determinism: identical batches
// encode to identical bytes (diff-map keys are sorted), so frames are
// directly comparable and idempotency keys derived from the body are
// stable across retries.
func TestFrameDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := encodeRecordBatch(&a, codecBatch()); err != nil {
		t.Fatal(err)
	}
	if err := encodeRecordBatch(&b, codecBatch()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical batches encoded to different frames")
	}
}

// TestDecodeHostileFrames proves the decoder rejects malformed input
// of every shape with an error — never a panic, never a partial
// batch.
func TestDecodeHostileFrames(t *testing.T) {
	var good bytes.Buffer
	if err := encodeRecordBatch(&good, codecBatch()); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"bad magic":        append([]byte("XXXX"), good.Bytes()[4:]...),
		"magic only":       []byte("PRB1"),
		"garbage gzip":     append([]byte("PRB1"), []byte("not a gzip stream")...),
		"truncated":        good.Bytes()[:good.Len()/2],
		"trailing garbage": append(bytes.Clone(good.Bytes()), 0xde, 0xad),
	}
	for name, data := range cases {
		if _, err := decodeRecordBatch(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// A payload-level attack: valid gzip around a hostile payload
	// demanding a giant string table.
	hostile := acquireBuffer()
	hostile.Write([]byte{0x00})                               // lease id: empty
	hostile.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // string count: huge
	var frame bytes.Buffer                                    //
	frame.Write(frameMagic)                                   //
	zw := acquireGzipWriter(&frame)                           //
	if _, err := zw.Write(hostile.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	releaseGzipWriter(zw)
	releaseBuffer(hostile)
	if _, err := decodeRecordBatch(frame.Bytes()); err == nil {
		t.Error("giant string-table count decoded without error")
	}
}

// countingHandler wraps a coordinator handler and tallies the
// Content-Type of every /v1/records request, so tests can prove which
// encodings actually went over the wire.
type countingHandler struct {
	inner http.Handler
	mu    sync.Mutex
	seen  map[string]int
}

func (c *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == PathRecords {
		ct := r.Header.Get("Content-Type")
		if i := strings.IndexByte(ct, ';'); i >= 0 {
			ct = ct[:i]
		}
		c.mu.Lock()
		if c.seen == nil {
			c.seen = map[string]int{}
		}
		c.seen[ct]++
		c.mu.Unlock()
	}
	c.inner.ServeHTTP(w, r)
}

func (c *countingHandler) count(ct string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seen[ct]
}

// TestMixedFleetBitIdentical runs a fleet split across the two
// encodings — one worker on negotiated binary frames, one forced to
// JSON — and asserts both encodings really hit the wire and the
// assembled result is bit-identical to the single-node baseline:
// framing is transport, never semantics.
func TestMixedFleetBitIdentical(t *testing.T) {
	dir := t.TempDir()
	coord, err := NewCoordinator(Config{
		Instance: "reduced",
		Tier:     runner.TierQuick,
		Dir:      dir,
		Units:    4,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ch := &countingHandler{inner: coord.Handler()}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ch)
	go srv.Serve(l)
	defer srv.Close()
	url := "http://" + l.Addr().String()

	encodings := []string{"", "json"}
	errs := make(chan error, len(encodings))
	for i, enc := range encodings {
		wo := WorkerOptions{
			Name:         fmt.Sprintf("mixed-w%d-%s", i+1, map[bool]string{true: "bin", false: "json"}[enc == ""]),
			Dir:          filepath.Join(dir, "scratch"),
			Encoding:     enc,
			BatchSize:    8,
			PollInterval: 50 * time.Millisecond,
			Logf:         t.Logf,
		}
		go func() { errs <- RunWorker(url, wo) }()
	}
	select {
	case <-coord.Done():
	case <-time.After(2 * time.Minute):
		t.Fatal("mixed fleet did not complete the campaign")
	}
	for range encodings {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if n := ch.count(ContentTypeBinary); n == 0 {
		t.Error("no binary-framed batch hit the wire — the negotiated worker never used the frame")
	}
	if n := ch.count(ContentTypeJSON); n == 0 {
		t.Error("no JSON batch hit the wire — the forced-JSON worker did not stay on JSON")
	}
	rr, err := coord.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesBaseline(t, rr)
}

// TestBinaryRefusedFallsBackToJSON simulates a coordinator that
// advertises the binary frame but refuses it (version skew, a
// content-type-mangling middlebox): the worker must fall back to JSON
// permanently and still complete the campaign bit-identically.
func TestBinaryRefusedFallsBackToJSON(t *testing.T) {
	dir := t.TempDir()
	logs := &logCapture{t: t}
	coord, err := NewCoordinator(Config{
		Instance: "reduced",
		Tier:     runner.TierQuick,
		Dir:      dir,
		Units:    2,
		Logf:     logs.logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	inner := coord.Handler()
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == PathRecords && strings.HasPrefix(r.Header.Get("Content-Type"), ContentTypeBinary) {
			httpError(w, http.StatusUnsupportedMediaType, "binary record frames not supported here")
			return
		}
		inner.ServeHTTP(w, r)
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(h)
	go srv.Serve(l)
	defer srv.Close()

	if err := RunWorker("http://"+l.Addr().String(), WorkerOptions{
		Name:         "skewed",
		Dir:          filepath.Join(dir, "scratch"),
		BatchSize:    4,
		PollInterval: 50 * time.Millisecond,
		Logf:         logs.logf,
	}); err != nil {
		t.Fatal(err)
	}
	if !logs.contains("falling back to JSON") {
		t.Error("worker never fell back to JSON — the 415 path was not exercised")
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("worker exited but the campaign is incomplete")
	}
	rr, err := coord.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesBaseline(t, rr)
}

// TestPullModeReuploads pins Config.Pull's distinct branch: with the
// coordinator already holding a unit's full record set (streamed), a
// v2 completion is still answered NeedRecords — the records re-upload
// and re-verify record by record — and only the post-upload
// completion settles the unit.
func TestPullModeReuploads(t *testing.T) {
	dir := t.TempDir()
	coord, err := NewCoordinator(Config{
		Instance: "reduced",
		Tier:     runner.TierQuick,
		Dir:      dir,
		Units:    2,
		Pull:     true,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	url, srv := serveCoordinator(t, coord)
	defer srv.Close()

	lr, recs := leaseAndCollect(t, url, filepath.Join(dir, "scratch"))
	w := &worker{base: url, opts: WorkerOptions{Name: "puller", Logf: t.Logf}, ctx: t.Context(),
		client: &http.Client{Timeout: 10 * time.Second}}
	var br BatchResponse
	if err := w.post(PathRecords, RecordBatch{LeaseID: lr.LeaseID, Records: recs}, &br); err != nil {
		t.Fatal(err)
	}
	if !br.UnitDone {
		t.Fatalf("streamed the full unit but UnitDone=false (accepted %d)", br.Accepted)
	}
	// The coordinator is fully covered, the digest matches — Pull must
	// still demand the upload.
	creq := CompleteRequest{LeaseID: lr.LeaseID, Runs: len(recs), Digest: runner.RecordSetDigest(recs)}
	var cr CompleteResponse
	if err := w.post(PathComplete, creq, &cr); err != nil {
		t.Fatal(err)
	}
	if !cr.NeedRecords {
		t.Fatal("Pull coordinator settled a covered unit without demanding the upload")
	}
	if err := w.post(PathRecords, RecordBatch{LeaseID: lr.LeaseID, Records: recs}, &br); err != nil {
		t.Fatalf("re-upload under Pull rejected: %v", err)
	}
	creq.Uploaded = true
	var cr2 CompleteResponse
	if err := w.post(PathComplete, creq, &cr2); err != nil {
		t.Fatal(err)
	}
	if cr2.NeedRecords {
		t.Error("coordinator still demands records after the forced re-upload")
	}
	st := coord.Status()
	if st.UnitsDetail[lr.Unit.Unit].State != "done" {
		t.Errorf("unit state %q after pull-verified completion, want done", st.UnitsDetail[lr.Unit.Unit].State)
	}
}

// TestDigestMismatchRejected pins the no-transfer settle's
// cross-check: a v2 completion whose record-set digest contradicts
// the journaled set is refused with 409, because it means the two
// sides simulated different outcomes.
func TestDigestMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	coord, err := NewCoordinator(Config{
		Instance: "reduced",
		Tier:     runner.TierQuick,
		Dir:      dir,
		Units:    2,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	url, srv := serveCoordinator(t, coord)
	defer srv.Close()

	lr, recs := leaseAndCollect(t, url, filepath.Join(dir, "scratch"))
	w := &worker{base: url, opts: WorkerOptions{Name: "liar", Logf: t.Logf}, ctx: t.Context(),
		client: &http.Client{Timeout: 10 * time.Second}}
	var br BatchResponse
	if err := w.post(PathRecords, RecordBatch{LeaseID: lr.LeaseID, Records: recs}, &br); err != nil {
		t.Fatal(err)
	}
	var cr CompleteResponse
	err = w.post(PathComplete, CompleteRequest{
		LeaseID: lr.LeaseID, Runs: len(recs),
		Digest: "0000000000000000000000000000000000000000000000000000000000000000",
	}, &cr)
	if !leaseLost(err) {
		t.Fatalf("contradicting digest answered %v, want a 409 conflict", err)
	}
	// The truthful digest then settles the same covered unit.
	if err := w.post(PathComplete, CompleteRequest{
		LeaseID: lr.LeaseID, Runs: len(recs), Digest: runner.RecordSetDigest(recs),
	}, &cr); err != nil {
		t.Fatalf("truthful completion rejected after the mismatched one: %v", err)
	}
}
