package report

import (
	"fmt"

	"propane/internal/campaign"
	"propane/internal/core"
)

// ValidationRow compares, for one system input, the end-to-end
// propagation probability predicted compositionally from the
// permeability matrix against the fraction measured directly in the
// campaign.
type ValidationRow struct {
	Input     string
	Output    string
	Predicted float64
	Measured  float64
	Delta     float64
}

// CrossValidate computes one ValidationRow per (system input, system
// output) combination. Predictions compose pair permeabilities along
// the trace tree; measurements are the campaign's per-location
// system-output propagation fractions. Agreement of the two validates
// the framework's compositionality on this system.
func CrossValidate(res *campaign.Result) ([]ValidationRow, error) {
	measured := make(map[string]float64)
	counted := make(map[string]bool)
	for _, loc := range res.Locations {
		if res.Topology.IsSystemInput(loc.Signal) && loc.Injections > 0 {
			measured[loc.Signal] = loc.Fraction
			counted[loc.Signal] = true
		}
	}
	var rows []ValidationRow
	for _, out := range res.Topology.SystemOutputs() {
		preds, err := core.PredictAllEndToEnd(res.Matrix, out)
		if err != nil {
			return nil, err
		}
		for _, p := range preds {
			if !counted[p.Input] {
				continue
			}
			rows = append(rows, ValidationRow{
				Input:     p.Input,
				Output:    out,
				Predicted: p.Predicted,
				Measured:  measured[p.Input],
				Delta:     p.Predicted - measured[p.Input],
			})
		}
	}
	return rows, nil
}

// ValidationTable renders the cross-validation of compositional
// prediction against direct measurement.
//
// Note on reading the deltas: the measured fraction counts propagation
// to *any* system output, while each row's prediction targets one
// output, and the prediction assumes path independence — so moderate
// deviations are expected where paths share modules (the paper's Eq. 4
// makes the same no-correlation caveat).
func ValidationTable(res *campaign.Result) (string, error) {
	rows, err := CrossValidate(res)
	if err != nil {
		return "", err
	}
	t := &textTable{header: []string{"Input", "Output", "predicted", "measured", "delta"}}
	for _, r := range rows {
		t.add(r.Input, r.Output,
			fmt.Sprintf("%.3f", r.Predicted),
			fmt.Sprintf("%.3f", r.Measured),
			fmt.Sprintf("%+.3f", r.Delta))
	}
	return "Cross-validation: compositional prediction vs measured end-to-end propagation\n" + t.String(), nil
}
