package report

import (
	"strings"
	"testing"

	"propane/internal/arrestor"
)

func TestCrossValidate(t *testing.T) {
	res := campaignResult(t)
	rows, err := CrossValidate(res)
	if err != nil {
		t.Fatalf("CrossValidate: %v", err)
	}
	// One row per (system input, system output): 4 × 1.
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	seen := map[string]ValidationRow{}
	for _, r := range rows {
		seen[r.Input] = r
		if r.Output != arrestor.SigTOC2 {
			t.Errorf("row output = %q, want TOC2", r.Output)
		}
		if r.Predicted < 0 || r.Predicted > 1 || r.Measured < 0 || r.Measured > 1 {
			t.Errorf("row %s out of range: %+v", r.Input, r)
		}
		if diff := r.Predicted - r.Measured; diff != r.Delta {
			t.Errorf("row %s delta inconsistent: %+v", r.Input, r)
		}
	}
	for _, in := range []string{arrestor.SigPACNT, arrestor.SigTIC1, arrestor.SigTCNT, arrestor.SigADC} {
		if _, ok := seen[in]; !ok {
			t.Errorf("missing row for input %s", in)
		}
	}
	// The compositional prediction must agree with the direct
	// measurement in gross terms: PACNT clearly propagates in both
	// views, and the prediction is never wildly off (the independence
	// assumption bounds the gap well below 1).
	pacnt := seen[arrestor.SigPACNT]
	if pacnt.Predicted == 0 || pacnt.Measured == 0 {
		t.Errorf("PACNT row vacuous: %+v", pacnt)
	}
	if d := pacnt.Delta; d < -0.9 || d > 0.9 {
		t.Errorf("PACNT prediction wildly off: %+v", pacnt)
	}
}

func TestValidationTable(t *testing.T) {
	out, err := ValidationTable(campaignResult(t))
	if err != nil {
		t.Fatalf("ValidationTable: %v", err)
	}
	for _, want := range []string{"Cross-validation", "predicted", "measured", arrestor.SigPACNT} {
		if !strings.Contains(out, want) {
			t.Errorf("ValidationTable missing %q:\n%s", want, out)
		}
	}
}
