package report

import (
	"strings"
	"sync"
	"testing"

	"propane/internal/arrestor"
	"propane/internal/campaign"
	"propane/internal/core"
	"propane/internal/model"
	"propane/internal/physics"
	"propane/internal/sim"
)

// exampleMatrix mirrors the core-package test fixture on the Fig. 2
// example system.
func exampleMatrix(t *testing.T) *core.Matrix {
	t.Helper()
	m := core.NewMatrix(model.PaperExampleSystem())
	assign := []struct {
		mod     string
		in, out int
		v       float64
	}{
		{"A", 1, 1, 0.8},
		{"B", 1, 1, 0.5}, {"B", 1, 2, 0.6}, {"B", 2, 1, 0.9}, {"B", 2, 2, 0.3},
		{"C", 1, 1, 0.7},
		{"D", 1, 1, 0.4},
		{"E", 1, 1, 0.9}, {"E", 2, 1, 0.5}, {"E", 3, 1, 0.2},
	}
	for _, a := range assign {
		if err := m.Set(a.mod, a.in, a.out, a.v); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

var (
	resOnce sync.Once
	res     *campaign.Result
	resErr  error
)

func campaignResult(t *testing.T) *campaign.Result {
	t.Helper()
	resOnce.Do(func() {
		cases, err := physics.Grid(1, 1, 11000, 11000, 60, 60)
		if err != nil {
			resErr = err
			return
		}
		res, resErr = campaign.Run(campaign.Config{
			Arrestor:       arrestor.DefaultConfig(),
			TestCases:      cases,
			Times:          []sim.Millis{2000},
			Bits:           []uint{3, 12},
			HorizonMs:      6000,
			DirectWindowMs: 500,
		})
	})
	if resErr != nil {
		t.Fatalf("campaign: %v", resErr)
	}
	return res
}

func TestTable1(t *testing.T) {
	out := Table1(campaignResult(t))
	for _, want := range []string{
		"Table 1", "P^CLOCK_{1,2}", "ms_slot_nbr", "P^V_REG_{2,1}", "n_inj", "95% CI",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
	// One row per pair plus header material.
	if got := strings.Count(out, "P^"); got < 25 {
		t.Errorf("Table1 has %d pair mentions, want >= 25", got)
	}
}

func TestTable2(t *testing.T) {
	out, err := Table2(campaignResult(t).Matrix)
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	for _, want := range []string{"Table 2", "CLOCK", "DIST_S", "PRES_S", "CALC", "V_REG", "PRES_A"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
	// OB1: DIST_S and PRES_S have no exposure values.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "DIST_S") || strings.HasPrefix(line, "PRES_S") {
			if !strings.Contains(line, "-") {
				t.Errorf("expected '-' exposure in line %q", line)
			}
		}
	}
}

func TestTable3(t *testing.T) {
	out, err := Table3(campaignResult(t).Matrix)
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	for _, want := range []string{"Table 3", "SetValue", "OutValue", "InValue"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 missing %q:\n%s", want, out)
		}
	}
}

func TestTable4(t *testing.T) {
	m := campaignResult(t).Matrix
	full, err := Table4(m, arrestor.SigTOC2, false)
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	if !strings.Contains(full, "22 of 22 shown") {
		t.Errorf("Table4 full listing missing path count:\n%s", full)
	}
	nz, err := Table4(m, arrestor.SigTOC2, true)
	if err != nil {
		t.Fatalf("Table4 nonzero: %v", err)
	}
	if !strings.Contains(nz, "of 22 shown") {
		t.Errorf("Table4 non-zero listing missing total:\n%s", nz)
	}
	if _, err := Table4(m, "not-an-output", false); err == nil {
		t.Error("Table4 on non-output succeeded")
	}
}

func TestUniformPropagationTable(t *testing.T) {
	out := UniformPropagationTable(campaignResult(t))
	if !strings.Contains(out, "fraction") || !strings.Contains(out, arrestor.ModVReg) {
		t.Errorf("uniform propagation table malformed:\n%s", out)
	}
}

func TestAdviceReport(t *testing.T) {
	out, err := AdviceReport(campaignResult(t).Matrix)
	if err != nil {
		t.Fatalf("AdviceReport: %v", err)
	}
	if !strings.Contains(out, "EDM module candidates") {
		t.Errorf("advice report malformed:\n%s", out)
	}
}

func TestTopologyDOT(t *testing.T) {
	dot := TopologyDOT(model.PaperExampleSystem())
	for _, want := range []string{
		"digraph", `"A" -> "B" [label="a1"]`, `"B" -> "B" [label="bfb"]`,
		`"in:extA"`, `"E" -> "out:sysout"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("TopologyDOT missing %q:\n%s", want, dot)
		}
	}
}

func TestPermeabilityGraphDOT(t *testing.T) {
	g, err := core.NewGraph(exampleMatrix(t))
	if err != nil {
		t.Fatal(err)
	}
	dot := PermeabilityGraphDOT(g)
	for _, want := range []string{"P^A_{1,1}=0.800", `"B" -> "E"`, `"B" -> "B"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("PermeabilityGraphDOT missing %q:\n%s", want, dot)
		}
	}
	// Zero arcs are dashed, not omitted.
	m := core.NewMatrix(model.PaperExampleSystem())
	g2, err := core.NewGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(PermeabilityGraphDOT(g2), "style=dashed") {
		t.Error("zero-weight arcs not dashed")
	}
}

func TestTreeDOT(t *testing.T) {
	m := exampleMatrix(t)
	tree, err := core.BacktrackTree(m, "sysout")
	if err != nil {
		t.Fatal(err)
	}
	dot := TreeDOT(tree, "fig4")
	for _, want := range []string{"sysout (root)", "extA (leaf)", "bfb (feedback)", "color=red"} {
		if !strings.Contains(dot, want) {
			t.Errorf("TreeDOT missing %q:\n%s", want, dot)
		}
	}
}

func TestCSVOutputs(t *testing.T) {
	m := exampleMatrix(t)
	csv := MatrixCSV(m)
	if !strings.HasPrefix(csv, "module,in,out,") {
		t.Errorf("MatrixCSV header wrong: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if got := strings.Count(csv, "\n"); got != 11 { // header + 10 pairs
		t.Errorf("MatrixCSV has %d lines, want 11", got)
	}
	exp, err := ExposureCSV(m)
	if err != nil || !strings.Contains(exp, "sysout,1.600000,3") {
		t.Errorf("ExposureCSV = %q, %v", exp, err)
	}
	paths, err := PathsCSV(m, "sysout")
	if err != nil || !strings.Contains(paths, "extA") {
		t.Errorf("PathsCSV = %q, %v", paths, err)
	}
	if _, err := PathsCSV(m, "bogus"); err == nil {
		t.Error("PathsCSV(bogus) succeeded")
	}
}
