package report

import (
	"strings"
	"testing"
)

func TestMarkdownFullReport(t *testing.T) {
	res := campaignResult(t)
	md, err := Markdown(res, MarkdownOptions{
		Title: "Test Report", Latency: true, Sensitivity: true,
		Criticality: true, Validation: true, Uniform: true,
	})
	if err != nil {
		t.Fatalf("Markdown: %v", err)
	}
	for _, want := range []string{
		"# Test Report",
		"## Table 1 — error permeability per pair",
		"## Table 2 — module measures",
		"## Table 3 — signal error exposure",
		"## Table 4 — propagation paths to TOC2",
		"## Backtrack tree of TOC2",
		"## EDM/ERM placement advice",
		"## FMECA complement",
		"## Propagation latency and classification",
		"## Hardening priorities for TOC2",
		"## Input criticality for TOC2",
		"## Cross-validation (prediction vs measurement)",
		"## Uniform-propagation check",
		"```",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q", want)
		}
	}
	// Code fences are balanced.
	if fences := strings.Count(md, "```"); fences%2 != 0 {
		t.Errorf("unbalanced code fences: %d", fences)
	}
}

func TestMarkdownMinimal(t *testing.T) {
	res := campaignResult(t)
	md, err := Markdown(res, MarkdownOptions{})
	if err != nil {
		t.Fatalf("Markdown: %v", err)
	}
	if !strings.Contains(md, "# Error-propagation analysis report") {
		t.Error("default title missing")
	}
	for _, absent := range []string{"Hardening priorities", "Uniform-propagation", "Cross-validation"} {
		if strings.Contains(md, absent) {
			t.Errorf("optional section %q present in minimal report", absent)
		}
	}
}
