package report

import (
	"fmt"
	"sort"
	"strings"

	"propane/internal/campaign"
	"propane/internal/core"
)

// PredictionRow compares one pair's analytical permeability forecast
// (internal/estimate, computed before any injection) against the
// campaign's measured estimate and its confidence interval.
type PredictionRow struct {
	Pair         core.Pair
	InputSignal  string
	OutputSignal string
	Predicted    float64
	Estimate     float64
	Injections   int
	CILow        float64
	CIHigh       float64
	// OffCI marks pairs whose prediction falls outside the measured
	// 95% interval — the places where the analytical model and the
	// injection campaign genuinely disagree.
	OffCI bool
}

// PredictionRows builds the per-pair prediction-vs-estimate
// comparison. Pairs that never fired carry a degenerate [0,1]-wide
// interval and are never flagged: an unmeasured pair cannot contradict
// a forecast.
func PredictionRows(res *campaign.Result) []PredictionRow {
	if res.Predictions == nil {
		return nil
	}
	rows := make([]PredictionRow, 0, len(res.Pairs))
	for _, ps := range res.Pairs {
		row := PredictionRow{
			Pair:         ps.Pair,
			InputSignal:  ps.InputSignal,
			OutputSignal: ps.OutputSignal,
			Estimate:     ps.Estimate,
			Injections:   ps.Injections,
			CILow:        ps.CI.Low,
			CIHigh:       ps.CI.High,
		}
		if pp, ok := res.Predictions.Pair(ps.Pair); ok {
			row.Predicted = pp.Predicted
			row.OffCI = ps.Injections > 0 && (pp.Predicted < ps.CI.Low || pp.Predicted > ps.CI.High)
		}
		rows = append(rows, row)
	}
	return rows
}

// moduleOrder ranks modules by decreasing relative permeability P^M
// (Eq. 2), ties broken by topology order — the ordering the paper's
// Table 1 discussion draws its conclusions from.
func moduleOrder(m *core.Matrix) ([]string, map[string]float64, error) {
	measures, err := m.AllModuleMeasures()
	if err != nil {
		return nil, nil, err
	}
	vals := make(map[string]float64, len(measures))
	names := make([]string, 0, len(measures))
	for _, mm := range measures {
		vals[mm.Module] = mm.Relative
		names = append(names, mm.Module)
	}
	sort.SliceStable(names, func(i, j int) bool {
		return vals[names[i]] > vals[names[j]]
	})
	return names, vals, nil
}

// PredictionTable renders the analytical-prediction cross-check: one
// row per pair (forecast vs estimate ± CI, disagreements flagged),
// then the module ranking by relative permeability under both the
// predicted and the measured matrix with their pairwise concordance.
// High concordance means the cheap analytical pass already ranks the
// modules the way the full injection campaign does — the property the
// adaptive sampler's importance ordering leans on.
func PredictionTable(res *campaign.Result) (string, error) {
	rows := PredictionRows(res)
	if rows == nil {
		return "", fmt.Errorf("report: result carries no analytical prediction")
	}
	var b strings.Builder
	b.WriteString("Analytical prediction vs measured estimate per pair\n")
	t := &textTable{header: []string{"Pair", "Input", "Output", "predicted", "estimate", "95% CI", "n_inj", "agree"}}
	offCI := 0
	for _, r := range rows {
		flag := "yes"
		if r.OffCI {
			flag = "OFF-CI"
			offCI++
		} else if r.Injections == 0 {
			flag = "-"
		}
		t.add(r.Pair.String(), r.InputSignal, r.OutputSignal,
			fmt.Sprintf("%.3f", r.Predicted),
			fmt.Sprintf("%.3f", r.Estimate),
			fmt.Sprintf("[%.3f,%.3f]", r.CILow, r.CIHigh),
			fmt.Sprintf("%d", r.Injections),
			flag)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\n%d of %d measured pairs hold the analytical forecast inside their 95%% interval.\n",
		len(rows)-offCI, len(rows))

	pm, err := res.Predictions.Matrix()
	if err != nil {
		return "", err
	}
	predOrder, predVals, err := moduleOrder(pm)
	if err != nil {
		return "", err
	}
	measOrder, measVals, err := moduleOrder(res.Matrix)
	if err != nil {
		return "", err
	}
	b.WriteString("\nModule ranking by relative permeability P^M (predicted vs measured)\n")
	ot := &textTable{header: []string{"rank", "predicted", "P^M", "measured", "P^M"}}
	for i := range predOrder {
		ot.add(fmt.Sprintf("%d", i+1),
			predOrder[i], fmt.Sprintf("%.3f", predVals[predOrder[i]]),
			measOrder[i], fmt.Sprintf("%.3f", measVals[measOrder[i]]))
	}
	b.WriteString(ot.String())

	// Concordance over strictly-ordered module pairs: of the pairs the
	// measured ranking separates, how many does the prediction order
	// the same way.
	concordant, comparable := 0, 0
	for i := 0; i < len(measOrder); i++ {
		for j := i + 1; j < len(measOrder); j++ {
			a, c := measOrder[i], measOrder[j]
			if measVals[a] == measVals[c] {
				continue
			}
			comparable++
			if (predVals[a]-predVals[c])*(measVals[a]-measVals[c]) > 0 {
				concordant++
			}
		}
	}
	if comparable > 0 {
		fmt.Fprintf(&b, "\nRanking concordance: %d of %d strictly-ordered module pairs agree (%.0f%%).\n",
			concordant, comparable, 100*float64(concordant)/float64(comparable))
	}
	return b.String(), nil
}

// AdaptiveSection summarises the sequential sampler's spending for
// adaptive campaigns; empty when the campaign ran the full matrix.
func AdaptiveSection(res *campaign.Result) string {
	st := res.Adaptive
	if st == nil {
		return ""
	}
	var b strings.Builder
	saved := 0.0
	if st.FullRuns > 0 {
		saved = 100 * (1 - float64(st.Scheduled)/float64(st.FullRuns))
	}
	fmt.Fprintf(&b, "Sequential sampling closed every confidence interval at half-width ε = %.3g (per-quantity α = %.2g):\n",
		st.Epsilon, st.Alpha)
	fmt.Fprintf(&b, "scheduled %d of %d fireable runs (full matrix: %d — %.1f%% saved).\n",
		st.Scheduled, st.Population, st.FullRuns, saved)
	fmt.Fprintf(&b, "Locations: %d stopped early by the CI rule, %d sampled to exhaustion, %d degenerate (cannot fire).\n",
		st.StoppedEarly, st.Exhausted, st.Degenerate)
	return b.String()
}
