package report

import (
	"strings"
	"testing"
)

func TestFailureTable(t *testing.T) {
	cases := []FailureCase{
		{Fingerprint: "b", Module: "CALC", Signal: "pulscnt", Outputs: []string{"SetValue"},
			LatencyBucketMs: 200, Count: 3, Example: "bitflip:7@2500ms case 0"},
		{Fingerprint: "a", Module: "V_REG", Signal: "mspeed", Outputs: []string{"OutValue", "SetValue"},
			LatencyBucketMs: -1, Count: 7, Example: "bitflip:2@1500ms case 1"},
	}
	out := FailureTable(cases)
	if !strings.Contains(out, "Failing runs: 10 in 2 equivalence classes") {
		t.Errorf("header wrong:\n%s", out)
	}
	// A missing Kind renders as the historical deviation class.
	if !strings.Contains(out, "deviation") {
		t.Errorf("kind column missing:\n%s", out)
	}
	// Most frequent class first.
	if i, j := strings.Index(out, "mspeed@V_REG"), strings.Index(out, "pulscnt@CALC"); i < 0 || j < 0 || i > j {
		t.Errorf("classes not sorted by count:\n%s", out)
	}
	if !strings.Contains(out, "contained") || !strings.Contains(out, "200 ms+") {
		t.Errorf("latency column wrong:\n%s", out)
	}
	if !strings.Contains(out, "OutValue,SetValue") {
		t.Errorf("escape set missing:\n%s", out)
	}

	if empty := FailureTable(nil); !strings.Contains(empty, "0 in 0 equivalence classes") {
		t.Errorf("empty catalog renders wrong:\n%s", empty)
	}
}

func TestFailureTableSupervisedKinds(t *testing.T) {
	cases := []FailureCase{
		{Fingerprint: "crash MINE/hs_val", Kind: "crash", Module: "MINE", Signal: "hs_val",
			LatencyBucketMs: -1, Count: 4, Example: "bitflip:15@50ms case 0: mine tripped"},
		{Fingerprint: "hang TARPIT/hs_tick", Kind: "hang", Module: "TARPIT", Signal: "hs_tick",
			LatencyBucketMs: -1, Count: 4, Example: "bitflip:15@50ms case 0"},
		{Fingerprint: "quarantined FEED/hs_cmd", Kind: "quarantined", Module: "FEED", Signal: "hs_cmd",
			LatencyBucketMs: -1, Count: 1, Example: "bitflip:3@50ms case 1: worker panic"},
	}
	out := FailureTable(cases)
	for _, want := range []string{"crash", "hang", "quarantined", "hs_val@MINE", "mine tripped"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Supervised kinds have no propagation latency.
	if strings.Contains(out, "contained") {
		t.Errorf("supervised kinds should not render a containment latency:\n%s", out)
	}
}
