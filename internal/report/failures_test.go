package report

import (
	"strings"
	"testing"
)

func TestFailureTable(t *testing.T) {
	cases := []FailureCase{
		{Fingerprint: "b", Module: "CALC", Signal: "pulscnt", Outputs: []string{"SetValue"},
			LatencyBucketMs: 200, Count: 3, Example: "bitflip:7@2500ms case 0"},
		{Fingerprint: "a", Module: "V_REG", Signal: "mspeed", Outputs: []string{"OutValue", "SetValue"},
			LatencyBucketMs: -1, Count: 7, Example: "bitflip:2@1500ms case 1"},
	}
	out := FailureTable(cases)
	if !strings.Contains(out, "Deviating runs: 10 in 2 equivalence classes") {
		t.Errorf("header wrong:\n%s", out)
	}
	// Most frequent class first.
	if i, j := strings.Index(out, "mspeed@V_REG"), strings.Index(out, "pulscnt@CALC"); i < 0 || j < 0 || i > j {
		t.Errorf("classes not sorted by count:\n%s", out)
	}
	if !strings.Contains(out, "contained") || !strings.Contains(out, "200 ms+") {
		t.Errorf("latency column wrong:\n%s", out)
	}
	if !strings.Contains(out, "OutValue,SetValue") {
		t.Errorf("escape set missing:\n%s", out)
	}

	if empty := FailureTable(nil); !strings.Contains(empty, "0 in 0 equivalence classes") {
		t.Errorf("empty catalog renders wrong:\n%s", empty)
	}
}
