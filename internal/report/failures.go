package report

import (
	"fmt"
	"sort"
	"strings"
)

// FailureCase is one deduplicated propagation-failure equivalence
// class distilled from a campaign journal by the orchestration layer
// (internal/runner): deviating runs are fingerprinted by injection
// location, the set of module outputs the error escaped through, and
// a bucketed propagation latency, so repeated identical propagations
// don't bury novel ones in the artifact listing.
type FailureCase struct {
	// Fingerprint is the canonical class key.
	Fingerprint string
	// Kind is the failure mode: "deviation" (a Golden Run Comparison
	// mismatch, the default when empty), "crash" (target panic),
	// "hang" (watchdog termination) or "quarantined" (poison job the
	// supervisor abandoned).
	Kind string
	// Module and Signal locate the injection.
	Module, Signal string
	// Outputs are the deviating outputs of the injected module,
	// sorted.
	Outputs []string
	// LatencyBucketMs is the lower bound of the system-failure
	// latency bucket; -1 when the deviation never reached a system
	// output (contained).
	LatencyBucketMs int64
	// Count is how many runs fell into the class.
	Count int
	// Example describes the first run observed in the class (its
	// injection and workload case).
	Example string
}

// FailureTable renders the failure catalog, most frequent class
// first, as an aligned text table — the triage view of a campaign's
// journal.
func FailureTable(cases []FailureCase) string {
	sorted := make([]FailureCase, len(cases))
	copy(sorted, cases)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Count != sorted[j].Count {
			return sorted[i].Count > sorted[j].Count
		}
		return sorted[i].Fingerprint < sorted[j].Fingerprint
	})

	t := &textTable{header: []string{"count", "kind", "location", "escaped via", "latency", "example"}}
	total := 0
	for _, c := range sorted {
		total += c.Count
		kind := c.Kind
		if kind == "" {
			kind = "deviation"
		}
		latency := "contained"
		if kind != "deviation" {
			latency = "-"
		} else if c.LatencyBucketMs >= 0 {
			latency = fmt.Sprintf("%d ms+", c.LatencyBucketMs)
		}
		t.add(
			fmt.Sprintf("%d", c.Count),
			kind,
			fmt.Sprintf("%s@%s", c.Signal, c.Module),
			strings.Join(c.Outputs, ","),
			latency,
			c.Example,
		)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Failing runs: %d in %d equivalence classes\n\n", total, len(sorted))
	b.WriteString(t.String())
	return b.String()
}
