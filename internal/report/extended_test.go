package report

import (
	"strings"
	"testing"

	"propane/internal/arrestor"
)

func TestLatencyTable(t *testing.T) {
	out := LatencyTable(campaignResult(t))
	for _, want := range []string{"mean", "p50", "p95", "transient", "permanent", "ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("LatencyTable missing %q:\n%s", want, out)
		}
	}
	// Zero-error pairs are omitted: the pairs into stopped (OB2, all
	// zero) never show up.
	for _, pair := range []string{"P^DIST_S_{1,3}", "P^DIST_S_{2,3}", "P^DIST_S_{3,3}"} {
		if strings.Contains(out, pair) {
			t.Errorf("zero-error pair %s listed:\n%s", pair, out)
		}
	}
}

func TestSensitivityTable(t *testing.T) {
	m := campaignResult(t).Matrix
	out, err := SensitivityTable(m, arrestor.SigTOC2)
	if err != nil {
		t.Fatalf("SensitivityTable: %v", err)
	}
	for _, want := range []string{"Hardening priorities", "P^PRES_A_{1,1}", "sensitivity"} {
		if !strings.Contains(out, want) {
			t.Errorf("SensitivityTable missing %q:\n%s", want, out)
		}
	}
	if _, err := SensitivityTable(m, "bogus"); err == nil {
		t.Error("SensitivityTable(bogus) succeeded")
	}
}

func TestCriticalityTable(t *testing.T) {
	m := campaignResult(t).Matrix
	out, err := CriticalityTable(m, arrestor.SigTOC2)
	if err != nil {
		t.Fatalf("CriticalityTable: %v", err)
	}
	for _, want := range []string{"Input criticality", arrestor.SigPACNT, arrestor.SigADC} {
		if !strings.Contains(out, want) {
			t.Errorf("CriticalityTable missing %q:\n%s", want, out)
		}
	}
	if _, err := CriticalityTable(m, "bogus"); err == nil {
		t.Error("CriticalityTable(bogus) succeeded")
	}
}

func TestProfileTable(t *testing.T) {
	m := campaignResult(t).Matrix
	prob := map[string]float64{
		arrestor.SigPACNT: 0.01,
		arrestor.SigTIC1:  0.01,
		arrestor.SigTCNT:  0.01,
		arrestor.SigADC:   0.05,
	}
	out, err := ProfileTable(m, arrestor.SigTOC2, prob)
	if err != nil {
		t.Fatalf("ProfileTable: %v", err)
	}
	for _, want := range []string{"Adjusted propagation probabilities", "Pr(source)", "index Σ"} {
		if !strings.Contains(out, want) {
			t.Errorf("ProfileTable missing %q:\n%s", want, out)
		}
	}
	if _, err := ProfileTable(m, arrestor.SigTOC2, map[string]float64{"nope": 0.5}); err == nil {
		t.Error("ProfileTable with unknown input succeeded")
	}
}

func TestFMECATable(t *testing.T) {
	m := campaignResult(t).Matrix
	out, err := FMECATable(m)
	if err != nil {
		t.Fatalf("FMECATable: %v", err)
	}
	for _, want := range []string{"FMECA complement", "criticality", "TOC2", "SetValue"} {
		if !strings.Contains(out, want) {
			t.Errorf("FMECATable missing %q:\n%s", want, out)
		}
	}
}
