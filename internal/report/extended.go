package report

import (
	"fmt"

	"propane/internal/campaign"
	"propane/internal/core"
)

// LatencyTable renders the propagation latency and error
// classification of every pair that produced errors: mean delay from
// trap firing to the first output deviation, and the
// transient/permanent split over the comparison window.
func LatencyTable(res *campaign.Result) string {
	t := &textTable{header: []string{"Pair", "Input", "Output", "errors", "mean", "p50", "p95", "transient", "permanent"}}
	for i := range res.Pairs {
		ps := &res.Pairs[i]
		if ps.Errors == 0 {
			continue
		}
		p50, _ := ps.LatencyPercentile(0.5)
		p95, _ := ps.LatencyPercentile(0.95)
		t.add(
			ps.Pair.String(),
			ps.InputSignal,
			ps.OutputSignal,
			fmt.Sprintf("%d", ps.Errors),
			fmt.Sprintf("%.1f ms", ps.MeanLatencyMs),
			fmt.Sprintf("%.0f ms", p50),
			fmt.Sprintf("%.0f ms", p95),
			fmt.Sprintf("%d", ps.Transients),
			fmt.Sprintf("%d", ps.Permanents),
		)
	}
	return "Propagation latency and error classification per pair\n" + t.String()
}

// SensitivityTable renders the pair sensitivities of a system output:
// which permeability value, if reduced, would shrink the output's
// exposure fastest (the hardening priority list).
func SensitivityTable(m *core.Matrix, output string) (string, error) {
	sens, err := core.PathSensitivities(m, output)
	if err != nil {
		return "", err
	}
	t := &textTable{header: []string{"Pair", "Input", "Output", "sensitivity", "paths"}}
	for _, s := range sens {
		t.add(
			s.Pair.String(),
			s.InputSignal,
			s.OutputSignal,
			fmt.Sprintf("%.4f", s.Sensitivity),
			fmt.Sprintf("%d", s.PathCount),
		)
	}
	return fmt.Sprintf("Hardening priorities for system output %s (d(Σ path weights)/dP per pair)\n", output) + t.String(), nil
}

// CriticalityTable renders the system inputs ranked by the total path
// weight they contribute toward the output: which external data source
// threatens the output most.
func CriticalityTable(m *core.Matrix, output string) (string, error) {
	ranked, err := core.InputCriticality(m, output)
	if err != nil {
		return "", err
	}
	t := &textTable{header: []string{"System input", "total path weight"}}
	for _, r := range ranked {
		t.add(r.Signal, fmt.Sprintf("%.4f", r.Score))
	}
	return fmt.Sprintf("Input criticality for system output %s\n", output) + t.String(), nil
}

// FMECATable renders the failure-mode worksheet derived from the
// permeability analysis (the FMECA complement of the paper's
// introduction), ordered by decreasing criticality.
func FMECATable(m *core.Matrix) (string, error) {
	rows, err := core.FMECA(m)
	if err != nil {
		return "", err
	}
	t := &textTable{header: []string{"Module", "Failure mode (output)", "severity", "occurrence", "criticality", "reaches"}}
	for _, r := range rows {
		reaches := ""
		for i, e := range r.Effects {
			if i > 0 {
				reaches += " "
			}
			reaches += fmt.Sprintf("%s(%.2f)", e.SystemOutput, e.MaxPathWeight)
		}
		t.add(r.Module, r.OutputSignal,
			fmt.Sprintf("%.3f", r.Severity),
			fmt.Sprintf("%.3f", r.Occurrence),
			fmt.Sprintf("%.3f", r.Criticality),
			reaches)
	}
	return "FMECA complement: failure modes ordered by analysis criticality\n" + t.String(), nil
}

// ProfileTable renders the adjusted path probabilities P' of Section
// 4.2 for given per-input error-occurrence probabilities.
func ProfileTable(m *core.Matrix, output string, prob map[string]float64) (string, error) {
	total, paths, err := core.OutputErrorProfile(m, output, prob)
	if err != nil {
		return "", err
	}
	t := &textTable{header: []string{"#", "P'", "Pr(source)", "path weight", "path"}}
	for i, wp := range paths {
		t.add(
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.5f", wp.Adjusted),
			fmt.Sprintf("%.3f", wp.SourceProb),
			fmt.Sprintf("%.4f", wp.Path.Weight()),
			wp.Path.String(),
		)
	}
	title := fmt.Sprintf("Adjusted propagation probabilities P' for %s (index Σ = %.5f)\n", output, total)
	return title + t.String(), nil
}
