package report

import (
	"fmt"
	"sort"
	"strings"

	"propane/internal/campaign"
	"propane/internal/core"
)

// MarkdownOptions selects the sections of the full Markdown report.
type MarkdownOptions struct {
	// Title heads the document; empty selects a default.
	Title string
	// Latency, Sensitivity, Criticality, Validation and Uniform toggle
	// the corresponding sections (the four paper tables, trees and
	// placement advice are always included).
	Latency, Sensitivity, Criticality, Validation, Uniform bool
}

// Markdown assembles the complete experiment report as a single
// Markdown document: campaign summary, Tables 1-4, backtrack trees,
// placement advice and the optional analysis sections, each rendered
// inside code fences so the monospaced tables survive any renderer.
func Markdown(res *campaign.Result, opts MarkdownOptions) (string, error) {
	var b strings.Builder
	title := opts.Title
	if title == "" {
		title = "Error-propagation analysis report"
	}
	fmt.Fprintf(&b, "# %s\n\n", title)

	sys := res.Topology
	fmt.Fprintf(&b, "System **%s**: %d modules, %d input/output pairs, inputs %v, outputs %v.\n\n",
		sys.Name(), len(sys.ModuleNames()), sys.TotalPairs(), sys.SystemInputs(), sys.SystemOutputs())
	fmt.Fprintf(&b, "Campaign: %d injection runs (%d traps never fired).\n\n", res.Runs, res.Unfired)
	if res.Crashes+res.Hangs+len(res.Quarantined) > 0 {
		fmt.Fprintf(&b, "Supervised failure modes: %d crashes, %d hangs, %d quarantined jobs — all excluded from every permeability denominator, so the estimates below cover only runs that completed.\n\n",
			res.Crashes, res.Hangs, len(res.Quarantined))
	}
	if len(res.Quarantined) > 0 {
		b.WriteString("### Quarantined jobs\n\nThe supervisor abandoned these jobs after repeated worker crashes; they are journaled (a resumed campaign will not re-execute them) but contribute to no estimate.\n\n```\n")
		qt := &textTable{header: []string{"injection", "case", "attempts", "reason"}}
		for _, q := range res.Quarantined {
			qt.add(q.Injection.String(), fmt.Sprintf("%d", q.CaseIndex), fmt.Sprintf("%d", q.Attempts), q.Reason)
		}
		b.WriteString(qt.String())
		b.WriteString("```\n\n")
	}
	if total := res.Pruning.Total(); total > 0 {
		fmt.Fprintf(&b, "### Pruning effectiveness\n\nEquivalence pruning resolved %d of %d runs without full simulation: %d no-op corruptions, %d provably unfired traps, %d memoized repeats (%d served by the persistent store), %d early reconvergences (%d executed in full). Pruned runs carry complete outcomes and stay in every n_inj denominator — the estimates below are unaffected.\n\n```\n",
			total, total+res.Pruning.Executed, res.Pruning.NoOp, res.Pruning.Unfired,
			res.Pruning.Memoized+res.Pruning.Store, res.Pruning.Store, res.Pruning.Converged, res.Pruning.Executed)
		pt := &textTable{header: []string{"signal", "noop", "unfired", "memoized", "store", "converged", "executed"}}
		signals := make([]string, 0, len(res.Pruning.PerSignal))
		for sig := range res.Pruning.PerSignal {
			signals = append(signals, sig)
		}
		sort.Strings(signals)
		for _, sig := range signals {
			c := res.Pruning.PerSignal[sig]
			pt.add(sig, fmt.Sprintf("%d", c.NoOp), fmt.Sprintf("%d", c.Unfired),
				fmt.Sprintf("%d", c.Memoized), fmt.Sprintf("%d", c.Store),
				fmt.Sprintf("%d", c.Converged), fmt.Sprintf("%d", c.Executed))
		}
		b.WriteString(pt.String())
		b.WriteString("```\n\n")
	}

	section := func(heading, body string) {
		fmt.Fprintf(&b, "## %s\n\n```\n%s```\n\n", heading, body)
	}

	if adaptive := AdaptiveSection(res); adaptive != "" {
		fmt.Fprintf(&b, "### Adaptive sampling\n\n%s\n", adaptive)
	}

	section("Table 1 — error permeability per pair", Table1(res))
	t2, err := Table2(res.Matrix)
	if err != nil {
		return "", err
	}
	section("Table 2 — module measures", t2)
	t3, err := Table3(res.Matrix)
	if err != nil {
		return "", err
	}
	section("Table 3 — signal error exposure", t3)
	for _, out := range sys.SystemOutputs() {
		t4, err := Table4(res.Matrix, out, true)
		if err != nil {
			return "", err
		}
		section(fmt.Sprintf("Table 4 — propagation paths to %s", out), t4)
		tree, err := core.BacktrackTree(res.Matrix, out)
		if err != nil {
			return "", err
		}
		section(fmt.Sprintf("Backtrack tree of %s", out), TreeText(tree))
	}
	advice, err := AdviceReport(res.Matrix)
	if err != nil {
		return "", err
	}
	section("EDM/ERM placement advice", advice)
	fmeca, err := FMECATable(res.Matrix)
	if err != nil {
		return "", err
	}
	section("FMECA complement", fmeca)

	if res.Predictions != nil {
		pt, err := PredictionTable(res)
		if err != nil {
			return "", err
		}
		section("Analytical prediction cross-check", pt)
	}

	if opts.Latency {
		section("Propagation latency and classification", LatencyTable(res))
	}
	if opts.Sensitivity {
		for _, out := range sys.SystemOutputs() {
			s, err := SensitivityTable(res.Matrix, out)
			if err != nil {
				return "", err
			}
			section(fmt.Sprintf("Hardening priorities for %s", out), s)
		}
	}
	if opts.Criticality {
		for _, out := range sys.SystemOutputs() {
			s, err := CriticalityTable(res.Matrix, out)
			if err != nil {
				return "", err
			}
			section(fmt.Sprintf("Input criticality for %s", out), s)
		}
	}
	if opts.Validation {
		s, err := ValidationTable(res)
		if err != nil {
			return "", err
		}
		section("Cross-validation (prediction vs measurement)", s)
	}
	if opts.Uniform {
		section("Uniform-propagation check", UniformPropagationTable(res))
	}
	return b.String(), nil
}
