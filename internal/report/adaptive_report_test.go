package report

import (
	"strings"
	"testing"

	"propane/internal/arrestor"
	"propane/internal/campaign"
	"propane/internal/physics"
	"propane/internal/sim"
)

func TestPredictionTable(t *testing.T) {
	out, err := PredictionTable(campaignResult(t))
	if err != nil {
		t.Fatalf("PredictionTable: %v", err)
	}
	for _, want := range []string{
		"Analytical prediction vs measured estimate", "predicted", "estimate", "95% CI", "agree",
		"Module ranking by relative permeability", "CLOCK", "V_REG",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("PredictionTable missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "P^"); got < 25 {
		t.Errorf("PredictionTable has %d pair mentions, want >= 25 rows", got)
	}
}

func TestAdaptiveSectionEmptyForFixedMatrix(t *testing.T) {
	if s := AdaptiveSection(campaignResult(t)); s != "" {
		t.Errorf("fixed-matrix campaign renders an adaptive section:\n%s", s)
	}
}

// TestMarkdownAdaptive runs a small adaptive campaign end to end and
// checks the report documents both the sampler's spending and the
// per-pair prediction cross-check.
func TestMarkdownAdaptive(t *testing.T) {
	cases, err := physics.Grid(1, 1, 11000, 11000, 60, 60)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run(campaign.Config{
		Arrestor:       arrestor.DefaultConfig(),
		TestCases:      cases,
		Times:          []sim.Millis{2000},
		Bits:           []uint{3, 12},
		HorizonMs:      6000,
		DirectWindowMs: 500,
		Adaptive:       campaign.AdaptiveForce,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Adaptive == nil {
		t.Fatal("adaptive campaign carries no AdaptiveStats")
	}
	if s := AdaptiveSection(res); !strings.Contains(s, "Sequential sampling") {
		t.Errorf("AdaptiveSection = %q, want the sampler summary", s)
	}
	md, err := Markdown(res, MarkdownOptions{})
	if err != nil {
		t.Fatalf("Markdown: %v", err)
	}
	for _, want := range []string{"### Adaptive sampling", "Analytical prediction cross-check"} {
		if !strings.Contains(md, want) {
			t.Errorf("adaptive markdown report missing %q", want)
		}
	}
}
