package report

import (
	"fmt"
	"strings"

	"propane/internal/core"
	"propane/internal/model"
)

// TopologyDOT renders the module/signal topology (the paper's Fig. 2
// or Fig. 8) as a Graphviz digraph: one node per module, one labelled
// edge per signal connection, diamond nodes for system inputs and
// outputs.
func TopologyDOT(sys *model.System) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box];\n", sys.Name())
	for _, in := range sys.SystemInputs() {
		fmt.Fprintf(&b, "  %q [shape=diamond];\n", "in:"+in)
	}
	for _, out := range sys.SystemOutputs() {
		fmt.Fprintf(&b, "  %q [shape=diamond];\n", "out:"+out)
	}
	for _, mod := range sys.Modules() {
		for _, in := range mod.Inputs {
			if drv, driven := sys.Driver(in.Signal); driven {
				fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", drv.Module, mod.Name, in.Signal)
			} else {
				fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", "in:"+in.Signal, mod.Name, in.Signal)
			}
		}
	}
	for _, out := range sys.SystemOutputs() {
		if drv, driven := sys.Driver(out); driven {
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", drv.Module, "out:"+out, out)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// PermeabilityGraphDOT renders the permeability graph (the paper's
// Figs. 3 and 9): one node per module and one weighted arc per
// input/output pair of the driving module, labelled with the pair and
// its permeability value. Zero-weight arcs are drawn dashed (the
// paper omits them; keeping them dashed makes the structure visible).
func PermeabilityGraphDOT(g *core.Graph) string {
	sys := g.Matrix().System()
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=ellipse];\n", sys.Name()+"-permeability")
	for _, arc := range g.Arcs() {
		style := ""
		if arc.Weight == 0 {
			style = ", style=dashed"
		}
		fmt.Fprintf(&b, "  %q -> %q [label=\"%s=%.3f\"%s];\n",
			arc.From, arc.To, arc.Pair.String(), arc.Weight, style)
	}
	b.WriteString("}\n")
	return b.String()
}

// TreeDOT renders a backtrack or trace tree (the paper's Figs. 4, 5,
// 10, 11, 12). Feedback leaves are connected with the paper's "double
// line" notation, approximated by a bold red edge.
func TreeDOT(t *core.Tree, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  node [shape=plaintext];\n", name)
	id := 0
	var emit func(n *core.Node) int
	emit = func(n *core.Node) int {
		my := id
		id++
		label := n.Signal
		switch n.Kind {
		case core.KindRoot:
			label += " (root)"
		case core.KindTerminal:
			label += " (leaf)"
		case core.KindFeedback:
			label += " (feedback)"
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", my, label)
		for _, c := range n.Children {
			child := emit(c)
			attrs := fmt.Sprintf("label=\"%s=%.3f\"", c.Pair.String(), c.Weight)
			if c.Kind == core.KindFeedback {
				attrs += ", color=red, penwidth=2"
			}
			fmt.Fprintf(&b, "  n%d -> n%d [%s];\n", my, child, attrs)
		}
		return my
	}
	emit(t.Root)
	b.WriteString("}\n")
	return b.String()
}

// MatrixCSV renders every pair permeability as CSV
// (module,in,out,input_signal,output_signal,value).
func MatrixCSV(m *core.Matrix) string {
	var b strings.Builder
	b.WriteString("module,in,out,input_signal,output_signal,value\n")
	for _, pv := range m.Pairs() {
		fmt.Fprintf(&b, "%s,%d,%d,%s,%s,%.6f\n",
			pv.Pair.Module, pv.Pair.In, pv.Pair.Out, pv.InputSignal, pv.OutputSignal, pv.Value)
	}
	return b.String()
}

// ExposureCSV renders the signal exposures as CSV (signal,exposure).
func ExposureCSV(m *core.Matrix) (string, error) {
	exposures, err := core.SignalExposures(m)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("signal,exposure,arcs\n")
	for _, se := range exposures {
		fmt.Fprintf(&b, "%s,%.6f,%d\n", se.Signal, se.Exposure, se.Arcs)
	}
	return b.String(), nil
}

// PathsCSV renders the ranked backtrack paths of a system output as
// CSV (rank,weight,leaf,path).
func PathsCSV(m *core.Matrix, output string) (string, error) {
	tree, err := core.BacktrackTree(m, output)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("rank,weight,leaf,path\n")
	for i, p := range tree.RankedPaths() {
		fmt.Fprintf(&b, "%d,%.6f,%s,%q\n", i+1, p.Weight(), p.Leaf(), p.String())
	}
	return b.String(), nil
}
