// Package report renders the analysis artefacts of the paper: the
// permeability table (Table 1), the module-measure table (Table 2),
// the signal-exposure table (Table 3), the ranked propagation-path
// table (Table 4), and Graphviz DOT renderings of the topology, the
// permeability graph (Fig. 9) and the backtrack/trace trees (Figs.
// 4, 5, 10–12).
package report

import (
	"fmt"
	"strings"

	"propane/internal/campaign"
	"propane/internal/core"
)

// textTable renders rows of cells with aligned columns.
type textTable struct {
	header []string
	rows   [][]string
}

func (t *textTable) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *textTable) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len([]rune(h))
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len([]rune(c)); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for i, w := range widths {
		if i > 0 {
			total += 2
		}
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Table1 renders the estimated error permeability of every
// input/output pair, with raw counts and 95% confidence intervals —
// the paper's Table 1.
func Table1(res *campaign.Result) string {
	// Crash/hang columns appear only when the campaign saw supervised
	// failure modes, keeping the paper-faithful rendering otherwise.
	supervised := res.Crashes+res.Hangs > 0
	header := []string{"Pair", "Input", "Output", "n_inj", "n_err", "P", "95% CI"}
	if supervised {
		header = append(header, "crash", "hang")
	}
	t := &textTable{header: header}
	for _, ps := range res.Pairs {
		row := []string{
			ps.Pair.String(),
			ps.InputSignal,
			ps.OutputSignal,
			fmt.Sprintf("%d", ps.Injections),
			fmt.Sprintf("%d", ps.Errors),
			fmt.Sprintf("%.3f", ps.Estimate),
			fmt.Sprintf("[%.3f,%.3f]", ps.CI.Low, ps.CI.High),
		}
		if supervised {
			row = append(row, fmt.Sprintf("%d", ps.Crashes), fmt.Sprintf("%d", ps.Hangs))
		}
		t.add(row...)
	}
	return "Table 1: estimated error permeability values of the input/output pairs\n" + t.String()
}

// Table2 renders the relative permeability, non-weighted relative
// permeability, error exposure and non-weighted error exposure of
// every module — the paper's Table 2. Modules without exposure (only
// system inputs) show "-" (paper OB1).
func Table2(m *core.Matrix) (string, error) {
	measures, err := m.AllModuleMeasures()
	if err != nil {
		return "", err
	}
	t := &textTable{header: []string{"Module", "P^M", "P̄^M", "X^M", "X̄^M"}}
	for _, mm := range measures {
		x, xb := "-", "-"
		if mm.HasExposure {
			x = fmt.Sprintf("%.3f", mm.Exposure)
			xb = fmt.Sprintf("%.3f", mm.NonWeightedExposure)
		}
		t.add(mm.Module, fmt.Sprintf("%.3f", mm.Relative), fmt.Sprintf("%.3f", mm.NonWeighted), x, xb)
	}
	return "Table 2: estimated relative permeability and error exposure of the modules\n" + t.String(), nil
}

// Table3 renders the signal error exposure of every signal — the
// paper's Table 3 — sorted by decreasing exposure.
func Table3(m *core.Matrix) (string, error) {
	exposures, err := core.SignalExposures(m)
	if err != nil {
		return "", err
	}
	t := &textTable{header: []string{"Signal", "X^S", "arcs"}}
	for _, se := range exposures {
		t.add(se.Signal, fmt.Sprintf("%.3f", se.Exposure), fmt.Sprintf("%d", se.Arcs))
	}
	return "Table 3: estimated signal error exposures\n" + t.String(), nil
}

// Table4 renders the propagation paths of the backtrack tree of the
// given system output, ranked by weight — the paper's Table 4. When
// nonZeroOnly is set, only paths along which errors might propagate
// are listed (the paper lists the 13 of 22 with weight > 0).
func Table4(m *core.Matrix, output string, nonZeroOnly bool) (string, error) {
	tree, err := core.BacktrackTree(m, output)
	if err != nil {
		return "", err
	}
	paths := tree.RankedPaths()
	total := len(paths)
	if nonZeroOnly {
		paths = tree.NonZeroPaths()
	}
	t := &textTable{header: []string{"#", "Weight", "Path", "Pairs"}}
	for i, p := range paths {
		t.add(
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.4f", p.Weight()),
			p.String(),
			p.PairNotation(),
		)
	}
	title := fmt.Sprintf("Table 4: propagation paths for system output %s (%d of %d shown)\n",
		output, len(paths), total)
	return title + t.String(), nil
}

// UniformPropagationTable renders the per-location system-output
// propagation fractions (the check against the uniform-propagation
// hypothesis of the paper's Section 2).
func UniformPropagationTable(res *campaign.Result) string {
	t := &textTable{header: []string{"Module", "Input", "n", "propagated", "fraction"}}
	for _, loc := range res.Locations {
		t.add(loc.Module, loc.Signal,
			fmt.Sprintf("%d", loc.Injections),
			fmt.Sprintf("%d", loc.Propagated),
			fmt.Sprintf("%.3f", loc.Fraction))
	}
	return "Uniform-propagation check: fraction of injections reaching the system output\n" + t.String()
}

// AdviceReport renders the Section 5 placement advice.
func AdviceReport(m *core.Matrix) (string, error) {
	adv, err := core.Advise(m)
	if err != nil {
		return "", err
	}
	return "EDM/ERM placement advice (Section 5 rules)\n" + adv.Summary(), nil
}
