package report

import (
	"strings"
	"testing"

	"propane/internal/core"
)

func TestTreeText(t *testing.T) {
	m := exampleMatrix(t)
	tree, err := core.BacktrackTree(m, "sysout")
	if err != nil {
		t.Fatal(err)
	}
	out := TreeText(tree)
	for _, want := range []string{
		"sysout (backtrack tree root)",
		"├─ b2  P^E_{1,1}=0.900",
		"└─ extE  P^E_{3,1}=0.200  [leaf]",
		"[feedback]",
		"│",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("TreeText missing %q:\n%s", want, out)
		}
	}
	// One line per node.
	tree2, err := core.TraceTree(m, "extA")
	if err != nil {
		t.Fatal(err)
	}
	txt := TreeText(tree2)
	if !strings.Contains(txt, "trace tree root") {
		t.Errorf("trace tree header missing:\n%s", txt)
	}
	gotLines := len(strings.Split(strings.TrimSpace(txt), "\n"))
	if gotLines != tree2.Root.CountNodes() {
		t.Errorf("TreeText has %d lines, want %d (one per node)", gotLines, tree2.Root.CountNodes())
	}
}
