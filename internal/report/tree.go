package report

import (
	"fmt"
	"strings"

	"propane/internal/core"
)

// TreeText renders a backtrack or trace tree as an indented ASCII
// tree, one node per line with the arc's pair and weight — the
// terminal-friendly counterpart of TreeDOT for Figs. 4, 5 and 10–12.
//
//	TOC2 (root)
//	└─ OutValue  P^PRES_A_{1,1}=0.997
//	   ├─ SetValue  P^V_REG_{1,1}=1.000
//	   │  ├─ pulscnt  P^CALC_{1,2}=0.424
//	   ...
func TreeText(t *core.Tree) string {
	var b strings.Builder
	kind := "backtrack"
	if !t.Backtrack {
		kind = "trace"
	}
	fmt.Fprintf(&b, "%s (%s tree root)\n", t.Root.Signal, kind)
	renderChildren(&b, t.Root, "")
	return b.String()
}

func renderChildren(b *strings.Builder, n *core.Node, prefix string) {
	for i, c := range n.Children {
		last := i == len(n.Children)-1
		branch, cont := "├─ ", "│  "
		if last {
			branch, cont = "└─ ", "   "
		}
		suffix := ""
		switch c.Kind {
		case core.KindTerminal:
			suffix = "  [leaf]"
		case core.KindFeedback:
			suffix = "  [feedback]"
		}
		fmt.Fprintf(b, "%s%s%s  %s=%.3f%s\n", prefix, branch, c.Signal, c.Pair.String(), c.Weight, suffix)
		renderChildren(b, c, prefix+cont)
	}
}
