// Package store is the content-addressed persistent result store
// behind the multi-tenant campaign service (internal/service). It
// holds two kinds of state under one directory:
//
//   - Memo entries: executed injection-run results keyed by the
//     campaign engine's memo key (state digest, port, firing tick,
//     corrupted value, step budget), scoped by campaign config digest.
//     They implement runner.MemoStore, so identical experiments are
//     served without simulating — across campaigns, tenants and
//     process restarts. The simulator is deterministic and the config
//     digest pins plan, golden behaviour and budget, so within one
//     scope a memo entry is bit-identical to a fresh execution.
//   - Blobs: immutable artifacts (assembled reports, metrics)
//     addressed by their SHA-256 digest under cas/, with named refs
//     pointing at them. Identical artifacts from identical campaigns
//     deduplicate to one blob.
//
// Durability follows the repository's journal idiom: an append-only
// memo.jsonl records index deltas; Snapshot compacts the whole index
// into memo.snapshot.json (temp + fsync + rename, atomic) and
// truncates the journal. Open loads the snapshot and replays the
// journal, healing a torn tail, so a store killed mid-write recovers
// to a consistent prefix. GC evicts least-recently-used memo entries
// beyond the bound and sweeps cas/ blobs no ref points at.
//
// The store degrades, never blocks: any internal error turns a get
// into a miss and a put into a logged no-op, so a wiped or corrupt
// store costs re-execution, not correctness.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"propane/internal/campaign"
	"propane/internal/chaos"
)

// CrashMidStorePut is the chaos crash-point label fired inside a put,
// after the blob or journal line is durably staged but before the
// in-memory index absorbs it — the window where a killed process
// leaves an orphan for recovery and GC to deal with.
const CrashMidStorePut = "mid-store-put"

const (
	snapshotName = "memo.snapshot.json"
	journalName  = "memo.jsonl"
	casDirName   = "cas"

	// syncEvery bounds the journal lines between fsyncs, mirroring the
	// runner journal's batching.
	syncEvery = 256

	// defaultMaxEntries bounds the memo index; GC evicts LRU beyond it.
	defaultMaxEntries = 1 << 18
)

// Options parameterises Open.
type Options struct {
	// Logf receives lifecycle and degradation lines (nil discards).
	Logf func(format string, args ...any)
	// MaxEntries bounds the memo index (0 = default 262144). GC evicts
	// least-recently-used entries beyond it.
	MaxEntries int
	// BlobGrace is how old an unreferenced cas/ blob must be before GC
	// removes it, protecting the PutBlob→SetRef window of a live
	// writer (0 = default 1h; negative sweeps immediately, tests
	// only).
	BlobGrace time.Duration
	// Crash arms chaos crash points (CrashMidStorePut); nil is inert.
	Crash *chaos.Crashpoints
}

// Stats is the store's observability snapshot.
type Stats struct {
	Entries int   `json:"entries"`
	Refs    int   `json:"refs"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Puts    int64 `json:"puts"`
	Evicted int64 `json:"evicted"`
	// SweptBlobs counts cas/ files removed by GC over this process's
	// lifetime.
	SweptBlobs int64 `json:"swept_blobs"`
}

// memoRec is one in-memory index entry. The entry is kept as raw
// JSON: decoding on every get hands each caller private maps, so no
// served entry ever aliases the index.
type memoRec struct {
	data []byte
	last uint64 // access clock, for LRU eviction
}

// Store is a concurrency-safe persistent result store. The zero value
// is not usable; call Open.
type Store struct {
	dir   string
	logf  func(string, ...any)
	crash *chaos.Crashpoints

	mu       sync.Mutex
	index    map[string]*memoRec
	refs     map[string]string // name → blob digest
	journal  *os.File
	unsynced int
	clock    uint64
	bound    int
	grace    time.Duration
	stats    Stats
	crashed  bool // a fired crash point; all ops degrade until reopened
	degraded bool // journal I/O failed; serve memory, stop persisting
	closed   bool
}

// journalLine is one memo.jsonl delta. Op "put" carries a memo entry,
// "ref" a named blob reference, "del" an eviction.
type journalLine struct {
	Op    string          `json:"op"`
	Key   string          `json:"key,omitempty"`
	Entry json.RawMessage `json:"entry,omitempty"`
	Name  string          `json:"name,omitempty"`
	Dig   string          `json:"digest,omitempty"`
}

// snapshotFile is the compacted on-disk index.
type snapshotFile struct {
	Version int                        `json:"version"`
	Entries map[string]json.RawMessage `json:"entries"`
	Refs    map[string]string          `json:"refs,omitempty"`
}

// Open loads (or initialises) the store under dir: snapshot first,
// then the journal replayed over it, torn tail healed by truncation.
func Open(dir string, opts Options) (*Store, error) {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	bound := opts.MaxEntries
	if bound <= 0 {
		bound = defaultMaxEntries
	}
	grace := opts.BlobGrace
	if grace == 0 {
		grace = time.Hour
	}
	if err := os.MkdirAll(filepath.Join(dir, casDirName), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:   dir,
		logf:  logf,
		crash: opts.Crash,
		index: make(map[string]*memoRec),
		refs:  make(map[string]string),
		bound: bound,
		grace: grace,
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayJournal(); err != nil {
		return nil, err
	}
	jf, err := os.OpenFile(filepath.Join(dir, journalName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening journal: %w", err)
	}
	s.journal = jf
	s.stats.Entries = len(s.index)
	s.stats.Refs = len(s.refs)
	return s, nil
}

func (s *Store) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(s.dir, snapshotName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading snapshot: %w", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		// A torn snapshot cannot happen through the atomic rename; a
		// corrupt one means external damage. Degrade to empty rather
		// than refusing service — the store's contract is cache, not
		// source of truth.
		s.logf("store: snapshot corrupt (%v) — starting from the journal alone", err)
		return nil
	}
	for k, raw := range snap.Entries {
		s.clock++
		s.index[k] = &memoRec{data: raw, last: s.clock}
	}
	for name, dig := range snap.Refs {
		s.refs[name] = dig
	}
	return nil
}

// replayJournal applies memo.jsonl over the snapshot. A torn final
// line (killed mid-append) is healed by truncating the file there.
func (s *Store) replayJournal() error {
	path := filepath.Join(s.dir, journalName)
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: opening journal: %w", err)
	}
	defer f.Close()
	var valid int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		var jl journalLine
		if err := json.Unmarshal(line, &jl); err != nil {
			s.logf("store: journal torn at offset %d — truncating the tail", valid)
			break
		}
		valid += int64(len(line)) + 1
		switch jl.Op {
		case "put":
			s.clock++
			s.index[jl.Key] = &memoRec{data: jl.Entry, last: s.clock}
		case "del":
			delete(s.index, jl.Key)
		case "ref":
			s.refs[jl.Name] = jl.Dig
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("store: scanning journal: %w", err)
	}
	if fi, err := os.Stat(path); err == nil && fi.Size() > valid {
		if err := os.Truncate(path, valid); err != nil {
			return fmt.Errorf("store: healing journal tail: %w", err)
		}
	}
	return nil
}

// memoIndexKey collapses (scope, key) into one digest so the index
// never holds tenant- or campaign-identifying plaintext and lookups
// stay O(1) regardless of key size.
func memoIndexKey(scope string, k campaign.MemoKey) string {
	kj, _ := json.Marshal(k) // struct of scalars; cannot fail
	h := sha256.New()
	h.Write([]byte(scope))
	h.Write([]byte{0})
	h.Write(kj)
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// GetMemo implements runner.MemoStore. Any internal failure reports a
// miss: the run then executes in full, so degradation is invisible to
// correctness.
func (s *Store) GetMemo(scope string, k campaign.MemoKey) (campaign.MemoEntry, bool) {
	key := memoIndexKey(scope, k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed || s.closed {
		return campaign.MemoEntry{}, false
	}
	rec, ok := s.index[key]
	if !ok {
		s.stats.Misses++
		return campaign.MemoEntry{}, false
	}
	var e campaign.MemoEntry
	if err := json.Unmarshal(rec.data, &e); err != nil {
		// A damaged entry is dropped, not served.
		delete(s.index, key)
		s.stats.Misses++
		s.logf("store: memo entry %s corrupt (%v) — dropped", key, err)
		return campaign.MemoEntry{}, false
	}
	s.clock++
	rec.last = s.clock
	s.stats.Hits++
	return e, true
}

// PutMemo implements runner.MemoStore. Failures are logged, never
// returned: the result is already journaled by the campaign layer,
// the store only accelerates the next one.
func (s *Store) PutMemo(scope string, k campaign.MemoKey, e campaign.MemoEntry) {
	data, err := json.Marshal(e)
	if err != nil {
		s.logf("store: encoding memo entry: %v", err)
		return
	}
	key := memoIndexKey(scope, k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed || s.closed {
		return
	}
	if old, ok := s.index[key]; ok && string(old.data) == string(data) {
		// Idempotent re-put (every worker of a re-run campaign offers
		// the same results back) — refresh recency, skip the journal.
		s.clock++
		old.last = s.clock
		return
	}
	s.appendLocked(journalLine{Op: "put", Key: key, Entry: data})
	s.hitCrashLocked()
	s.clock++
	s.index[key] = &memoRec{data: data, last: s.clock}
	s.stats.Puts++
	s.stats.Entries = len(s.index)
}

// PutBlob stores an immutable artifact under its SHA-256 digest and
// returns the digest. Storing the same bytes twice is free.
func (s *Store) PutBlob(data []byte) (string, error) {
	sum := sha256.Sum256(data)
	dig := hex.EncodeToString(sum[:])
	path := s.blobPath(dig)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed || s.closed {
		return "", errors.New("store: not serving (crashed or closed)")
	}
	if _, err := os.Stat(path); err == nil {
		return dig, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", fmt.Errorf("store: creating blob shard: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", fmt.Errorf("store: writing blob: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", fmt.Errorf("store: installing blob: %w", err)
	}
	// The blob is durable but nothing references it yet — the exact
	// window mid-store-put simulates dying in; GC's grace period is
	// what makes the orphan harmless.
	s.hitCrashLocked()
	return dig, nil
}

// GetBlob returns the artifact stored under digest.
func (s *Store) GetBlob(digest string) ([]byte, error) {
	if !validDigest(digest) {
		return nil, fmt.Errorf("store: invalid blob digest %q", digest)
	}
	data, err := os.ReadFile(s.blobPath(digest))
	if err != nil {
		return nil, fmt.Errorf("store: reading blob %s: %w", digest, err)
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != digest {
		return nil, fmt.Errorf("store: blob %s fails its own digest — damaged on disk", digest)
	}
	return data, nil
}

// SetRef journals a named reference to a blob, pinning it against GC.
func (s *Store) SetRef(name, digest string) error {
	if !validDigest(digest) {
		return fmt.Errorf("store: invalid blob digest %q", digest)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed || s.closed {
		return errors.New("store: not serving (crashed or closed)")
	}
	if s.refs[name] == digest {
		return nil
	}
	s.appendLocked(journalLine{Op: "ref", Name: name, Dig: digest})
	s.refs[name] = digest
	s.stats.Refs = len(s.refs)
	return nil
}

// Ref resolves a named reference.
func (s *Store) Ref(name string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.refs[name]
	return d, ok
}

// appendLocked journals one delta, degrading on I/O failure: the
// in-memory index keeps serving, persistence stops until reopened.
func (s *Store) appendLocked(jl journalLine) {
	if s.degraded || s.journal == nil {
		return
	}
	data, err := json.Marshal(jl)
	if err != nil {
		s.logf("store: encoding journal line: %v", err)
		return
	}
	if _, err := s.journal.Write(append(data, '\n')); err != nil {
		s.degraded = true
		s.logf("store: journal append failed (%v) — degraded to in-memory only", err)
		return
	}
	s.unsynced++
	if s.unsynced >= syncEvery {
		if err := s.journal.Sync(); err != nil {
			s.degraded = true
			s.logf("store: journal sync failed (%v) — degraded to in-memory only", err)
			return
		}
		s.unsynced = 0
	}
}

func (s *Store) hitCrashLocked() {
	if s.crash != nil && s.crash.Hit(CrashMidStorePut) {
		s.crashed = true
		// Everything before this instruction is on disk; nothing after
		// it happens. The in-memory state is poisoned — Open on the
		// same directory is the only way forward, exactly like a
		// killed process.
		if s.journal != nil {
			s.journal.Sync()
		}
		s.logf("store: chaos crash point %q fired — store dead until reopened", CrashMidStorePut)
	}
}

// Snapshot compacts the index into memo.snapshot.json (atomically)
// and truncates the journal — the checkpoint half of the lifecycle.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() error {
	if s.crashed || s.closed {
		return errors.New("store: not serving (crashed or closed)")
	}
	if s.degraded {
		return errors.New("store: degraded — refusing to snapshot partial state")
	}
	snap := snapshotFile{
		Version: 1,
		Entries: make(map[string]json.RawMessage, len(s.index)),
		Refs:    make(map[string]string, len(s.refs)),
	}
	for k, rec := range s.index {
		snap.Entries[k] = rec.data
	}
	for name, dig := range s.refs {
		snap.Refs[name] = dig
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	path := filepath.Join(s.dir, snapshotName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	// The snapshot holds everything; the journal restarts empty. A
	// kill between rename and truncate replays journal lines already
	// absorbed into the snapshot — puts and refs are idempotent, so
	// the replay is harmless.
	if err := s.journal.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating journal: %w", err)
	}
	if _, err := s.journal.Seek(0, 0); err != nil {
		return fmt.Errorf("store: rewinding journal: %w", err)
	}
	s.unsynced = 0
	return nil
}

// GCStats summarises one collection.
type GCStats struct {
	EvictedEntries int `json:"evicted_entries"`
	SweptBlobs     int `json:"swept_blobs"`
	Entries        int `json:"entries"`
}

// GC evicts least-recently-used memo entries beyond the bound, sweeps
// cas/ blobs no ref points at (older than the grace period), and
// snapshots the compacted index.
func (s *Store) GC() (GCStats, error) {
	s.mu.Lock()
	var gs GCStats
	if s.crashed || s.closed {
		s.mu.Unlock()
		return gs, errors.New("store: not serving (crashed or closed)")
	}
	if over := len(s.index) - s.bound; over > 0 {
		type cand struct {
			key  string
			last uint64
		}
		cands := make([]cand, 0, len(s.index))
		for k, rec := range s.index {
			cands = append(cands, cand{key: k, last: rec.last})
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].last < cands[j].last })
		for _, c := range cands[:over] {
			delete(s.index, c.key)
			s.appendLocked(journalLine{Op: "del", Key: c.key})
			gs.EvictedEntries++
		}
		s.stats.Evicted += int64(gs.EvictedEntries)
		s.stats.Entries = len(s.index)
	}
	referenced := make(map[string]bool, len(s.refs))
	for _, dig := range s.refs {
		referenced[dig] = true
	}
	grace := s.grace
	dir := s.dir
	if err := s.snapshotLocked(); err != nil {
		s.logf("store: gc snapshot: %v", err)
	}
	gs.Entries = len(s.index)
	s.mu.Unlock()

	// The blob sweep walks the filesystem without the lock: a PutBlob
	// racing the sweep is protected by the grace period, and refs
	// journaled after the referenced set was built keep their blobs
	// only if older than grace — which a just-written blob never is.
	cutoff := time.Now().Add(-grace)
	casRoot := filepath.Join(dir, casDirName)
	swept := 0
	_ = filepath.WalkDir(casRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.HasSuffix(path, ".tmp") {
			return nil
		}
		dig := filepath.Base(path)
		if referenced[dig] {
			return nil
		}
		if fi, err := d.Info(); err != nil || fi.ModTime().After(cutoff) {
			return nil
		}
		if os.Remove(path) == nil {
			swept++
		}
		return nil
	})
	gs.SweptBlobs = swept
	s.mu.Lock()
	s.stats.SweptBlobs += int64(swept)
	s.mu.Unlock()
	return gs, nil
}

// Stats returns the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.index)
	st.Refs = len(s.refs)
	return st
}

// Close syncs and closes the journal. The store stops serving.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.journal == nil {
		return nil
	}
	var err error
	if !s.degraded {
		err = s.journal.Sync()
	}
	if cerr := s.journal.Close(); err == nil {
		err = cerr
	}
	return err
}

func (s *Store) blobPath(digest string) string {
	return filepath.Join(s.dir, casDirName, digest[:2], digest)
}

func validDigest(d string) bool {
	if len(d) != 64 {
		return false
	}
	_, err := hex.DecodeString(d)
	return err == nil
}
