package store

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"propane/internal/campaign"
	"propane/internal/chaos"
	"propane/internal/sim"
	"propane/internal/trace"
)

func testKey(i int) campaign.MemoKey {
	return campaign.MemoKey{
		Case:     i,
		Digest:   "d-abc",
		Module:   "brake",
		Signal:   "v_in",
		FireTick: sim.Millis(40 + i),
		Value:    uint16(7 + i),
		Budget:   1000,
	}
}

func testEntry(i int) campaign.MemoEntry {
	return campaign.MemoEntry{
		Outcome: campaign.OutcomeDeviation,
		Detail:  "dev",
		FiredAt: sim.Millis(40 + i),
		Diffs: map[string]trace.Diff{
			"out": {Signal: "out", First: sim.Millis(i), Last: sim.Millis(90 + i), Count: 3},
		},
	}
}

func TestMemoRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, ok := s.GetMemo("scope", testKey(1)); ok {
		t.Fatal("hit on an empty store")
	}
	s.PutMemo("scope", testKey(1), testEntry(1))
	e, ok := s.GetMemo("scope", testKey(1))
	if !ok {
		t.Fatal("miss right after put")
	}
	if !reflect.DeepEqual(e, testEntry(1)) {
		t.Fatalf("entry mutated through the store: %+v", e)
	}
	// Scope isolation: the same key under another scope is a miss.
	if _, ok := s.GetMemo("other", testKey(1)); ok {
		t.Fatal("scope leak: entry served under a foreign scope")
	}
	// Served entries are private clones.
	e.Diffs["out"] = trace.Diff{Signal: "out", First: -1}
	again, _ := s.GetMemo("scope", testKey(1))
	if again.Diffs["out"].First != 1 {
		t.Fatalf("served diff map aliases the store: %+v", again.Diffs["out"])
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestReopenReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.PutMemo("scope", testKey(i), testEntry(i))
	}
	dig, err := s.PutBlob([]byte("report"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetRef("campaign/c1/report.md", dig); err != nil {
		t.Fatal(err)
	}
	// No Snapshot, no Close sync path: reopen must replay the journal.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < 10; i++ {
		e, ok := s2.GetMemo("scope", testKey(i))
		if !ok {
			t.Fatalf("entry %d lost across reopen", i)
		}
		if !reflect.DeepEqual(e, testEntry(i)) {
			t.Fatalf("entry %d damaged across reopen: %+v", i, e)
		}
	}
	if d, ok := s2.Ref("campaign/c1/report.md"); !ok || d != dig {
		t.Fatalf("ref lost across reopen: %q %v", d, ok)
	}
	if data, err := s2.GetBlob(dig); err != nil || string(data) != "report" {
		t.Fatalf("blob lost across reopen: %q %v", data, err)
	}
}

func TestSnapshotCompactsJournal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.PutMemo("scope", testKey(i), testEntry(i))
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("journal holds %d bytes after snapshot, want 0", fi.Size())
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < 50; i++ {
		if _, ok := s2.GetMemo("scope", testKey(i)); !ok {
			t.Fatalf("entry %d lost across snapshot+reopen", i)
		}
	}
}

func TestTornJournalTailHeals(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.PutMemo("scope", testKey(i), testEntry(i))
	}
	s.Close()
	// Simulate a kill mid-append: chop the journal mid-line.
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("torn tail not healed: %v", err)
	}
	defer s2.Close()
	for i := 0; i < 4; i++ {
		if _, ok := s2.GetMemo("scope", testKey(i)); !ok {
			t.Fatalf("intact entry %d lost to healing", i)
		}
	}
	if _, ok := s2.GetMemo("scope", testKey(4)); ok {
		t.Fatal("torn entry served")
	}
	// The healed store must accept new writes.
	s2.PutMemo("scope", testKey(4), testEntry(4))
	if _, ok := s2.GetMemo("scope", testKey(4)); !ok {
		t.Fatal("healed store rejects writes")
	}
}

func TestGCEvictsLRUAndSweepsOrphans(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxEntries: 4, BlobGrace: -time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 8; i++ {
		s.PutMemo("scope", testKey(i), testEntry(i))
	}
	// Refresh 0..1 so 2..5 are the LRU victims.
	s.GetMemo("scope", testKey(0))
	s.GetMemo("scope", testKey(1))

	kept, _ := s.PutBlob([]byte("kept"))
	orphan, _ := s.PutBlob([]byte("orphan"))
	if err := s.SetRef("keep", kept); err != nil {
		t.Fatal(err)
	}

	gs, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if gs.EvictedEntries != 4 || gs.Entries != 4 {
		t.Fatalf("gc stats: %+v", gs)
	}
	if gs.SweptBlobs != 1 {
		t.Fatalf("swept %d blobs, want the 1 orphan", gs.SweptBlobs)
	}
	for _, i := range []int{0, 1, 6, 7} {
		if _, ok := s.GetMemo("scope", testKey(i)); !ok {
			t.Errorf("recently used entry %d evicted", i)
		}
	}
	for _, i := range []int{2, 3, 4, 5} {
		if _, ok := s.GetMemo("scope", testKey(i)); ok {
			t.Errorf("LRU entry %d survived", i)
		}
	}
	if _, err := s.GetBlob(kept); err != nil {
		t.Errorf("referenced blob swept: %v", err)
	}
	if _, err := s.GetBlob(orphan); err == nil {
		t.Error("orphan blob survived the sweep")
	}
}

func TestCrashpointMidStorePut(t *testing.T) {
	dir := t.TempDir()
	cps := chaos.NewCrashpoints(nil)
	cps.Arm(CrashMidStorePut, 3)
	s, err := Open(dir, Options{Crash: cps})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		s.PutMemo("scope", testKey(i), testEntry(i))
	}
	if got := cps.Fired(); len(got) != 1 || got[0] != CrashMidStorePut {
		t.Fatalf("crash point did not fire: %v", got)
	}
	// Dead store: every op degrades.
	if _, ok := s.GetMemo("scope", testKey(0)); ok {
		t.Fatal("crashed store still serving")
	}
	if _, err := s.PutBlob([]byte("x")); err == nil {
		t.Fatal("crashed store accepted a blob")
	}
	s.Close()

	// Reopen recovers the durable prefix: entries journaled before the
	// crash (the crash fires mid-put #3, after its journal append).
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < 3; i++ {
		if _, ok := s2.GetMemo("scope", testKey(i)); !ok {
			t.Fatalf("pre-crash entry %d lost", i)
		}
	}
	for i := 3; i < 6; i++ {
		if _, ok := s2.GetMemo("scope", testKey(i)); ok {
			t.Fatalf("post-crash entry %d survived a dead store", i)
		}
	}
}

func TestWipedStoreDegrades(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.PutMemo("scope", testKey(1), testEntry(1))
	// Wipe the directory under the live store: persistence dies, the
	// in-memory index keeps serving, and nothing errors at the caller.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < syncEvery+8; i++ {
		s.PutMemo("scope", testKey(100+i), testEntry(i))
	}
	if _, ok := s.GetMemo("scope", testKey(1)); !ok {
		t.Fatal("in-memory entry lost on wipe")
	}
	// A fresh store over the wiped directory starts empty — misses
	// everywhere, callers fall back to execution.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.GetMemo("scope", testKey(1)); ok {
		t.Fatal("wiped store served a ghost entry")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir(), Options{MaxEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := testKey(i % 32)
				if i%3 == 0 {
					s.PutMemo("scope", k, testEntry(i%32))
				} else if e, ok := s.GetMemo("scope", k); ok {
					if e.FiredAt != testEntry(i%32).FiredAt {
						t.Errorf("worker %d: damaged entry %+v", w, e)
						return
					}
				}
				if i%50 == 0 {
					if _, err := s.GC(); err != nil {
						t.Errorf("worker %d: gc: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
