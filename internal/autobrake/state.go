package autobrake

import (
	"propane/internal/model"
	"propane/internal/sim"
)

// This file gives the brake controller's stateful components a
// State/Restore pair (model.Stateful) and the Instance the
// target.Checkpointable capture/restore methods.

// counterState covers the Instance-held hardware counters the glue
// pre-hook advances (free timer, wheel and vehicle pulse
// accumulators). The Instance cannot implement model.Stateful itself —
// its Restore signature is taken by target.Checkpointable — so a tiny
// adapter carries the counters.
type counterState struct {
	tcntVal uint16
	wspVal  uint16
	vspVal  uint16
}

type instanceCounters struct{ in *Instance }

// State implements model.Stateful.
func (c instanceCounters) State() any {
	return counterState{c.in.tcntVal, c.in.wspVal, c.in.vspVal}
}

// Restore implements model.Stateful.
func (c instanceCounters) Restore(state any) error {
	s := counterState{}
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	c.in.tcntVal, c.in.wspVal, c.in.vspVal = s.tcntVal, s.wspVal, s.vspVal
	return nil
}

type vehicleState struct {
	speedMS            float64
	omega              float64
	pressure           float64
	command            float64
	wheelPulseResidual float64
	wheelPulses        uint64
	vehPulseResidual   float64
	vehPulses          uint64
}

// State implements model.Stateful.
func (v *vehicle) State() any {
	return vehicleState{
		speedMS:            v.speedMS,
		omega:              v.omega,
		pressure:           v.pressure,
		command:            v.command,
		wheelPulseResidual: v.wheelPulseResidual,
		wheelPulses:        v.wheelPulses,
		vehPulseResidual:   v.vehPulseResidual,
		vehPulses:          v.vehPulses,
	}
}

// Restore implements model.Stateful.
func (v *vehicle) Restore(state any) error {
	s := vehicleState{}
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	v.speedMS, v.omega = s.speedMS, s.omega
	v.pressure, v.command = s.pressure, s.command
	v.wheelPulseResidual, v.wheelPulses = s.wheelPulseResidual, s.wheelPulses
	v.vehPulseResidual, v.vehPulses = s.vehPulseResidual, s.vehPulses
	return nil
}

type wspeedState struct {
	initialized  bool
	lastWSP      uint16
	lastTick     uint16
	windowPulses uint16
	windowTicks  uint32
	speed        uint16
}

// State implements model.Stateful.
func (w *wspeed) State() any {
	return wspeedState{w.initialized, w.lastWSP, w.lastTick, w.windowPulses, w.windowTicks, w.speed}
}

// Restore implements model.Stateful.
func (w *wspeed) Restore(state any) error {
	s := wspeedState{}
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	w.initialized, w.lastWSP, w.lastTick = s.initialized, s.lastWSP, s.lastTick
	w.windowPulses, w.windowTicks, w.speed = s.windowPulses, s.windowTicks, s.speed
	return nil
}

type vspeedState struct {
	initialized  bool
	lastVSP      uint16
	windowPulses uint16
	elapsed      uint16
	speed        uint16
}

// State implements model.Stateful.
func (v *vspeed) State() any {
	return vspeedState{v.initialized, v.lastVSP, v.windowPulses, v.elapsed, v.speed}
}

// Restore implements model.Stateful.
func (v *vspeed) Restore(state any) error {
	s := vspeedState{}
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	v.initialized, v.lastVSP = s.initialized, s.lastVSP
	v.windowPulses, v.elapsed, v.speed = s.windowPulses, s.elapsed, s.speed
	return nil
}

type slipCalcState struct {
	zeroWheelStreakMs uint16
	locked            bool
}

// State implements model.Stateful.
func (s *slipCalc) State() any { return slipCalcState{s.zeroWheelStreakMs, s.locked} }

// Restore implements model.Stateful.
func (s *slipCalc) Restore(state any) error {
	st := slipCalcState{}
	if err := model.RestoreAs(&st, state); err != nil {
		return err
	}
	s.zeroWheelStreakMs, s.locked = st.zeroWheelStreakMs, st.locked
	return nil
}

type ctrlState struct{ cmd uint16 }

// State implements model.Stateful.
func (c *ctrl) State() any { return ctrlState{c.cmd} }

// Restore implements model.Stateful.
func (c *ctrl) Restore(state any) error {
	s := ctrlState{}
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	c.cmd = s.cmd
	return nil
}

type pmodState struct{ current uint16 }

// State implements model.Stateful.
func (p *pmod) State() any { return pmodState{p.current} }

// Restore implements model.Stateful.
func (p *pmod) Restore(state any) error {
	s := pmodState{}
	if err := model.RestoreAs(&s, state); err != nil {
		return err
	}
	p.current = s.current
	return nil
}

// Checkpoint captures the instance's full dynamic state at a tick
// boundary (target.Checkpointable).
func (in *Instance) Checkpoint() (*sim.Snapshot, error) {
	snap := in.snap.Capture()
	snap.Hidden = model.CaptureStates(in.stateful)
	return snap, nil
}

// Restore overwrites the instance's full dynamic state from a
// snapshot captured on an identically constructed instance
// (target.Checkpointable).
func (in *Instance) Restore(snap *sim.Snapshot) error {
	if err := in.snap.Restore(snap); err != nil {
		return err
	}
	return model.RestoreStates(in.stateful, snap.Hidden)
}
