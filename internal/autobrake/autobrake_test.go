package autobrake

import (
	"reflect"
	"testing"

	"propane/internal/physics"
	"propane/internal/sim"
)

func TestTopologyShape(t *testing.T) {
	sys := Topology()
	if got, want := sys.TotalPairs(), 14; got != want {
		t.Errorf("TotalPairs() = %d, want %d", got, want)
	}
	if got, want := sys.SystemInputs(), []string{SigTCNT2, SigVSP, SigWSP}; !reflect.DeepEqual(got, want) {
		t.Errorf("SystemInputs() = %v, want %v", got, want)
	}
	if got, want := sys.SystemOutputs(), []string{SigPWM}; !reflect.DeepEqual(got, want) {
		t.Errorf("SystemOutputs() = %v, want %v", got, want)
	}
	if !sys.HasLocalFeedback(ModCtrl) {
		t.Error("CTRL has no local feedback, want mode loop")
	}
	for _, mod := range []string{ModWSpeed, ModVSpeed, ModSlip, ModPMod} {
		if sys.HasLocalFeedback(mod) {
			t.Errorf("HasLocalFeedback(%s) = true, want false", mod)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	mutations := map[string]func(*Config){
		"zero radius":       func(c *Config) { c.WheelRadiusM = 0 },
		"zero inertia":      func(c *Config) { c.WheelInertia = 0 },
		"zero pulses":       func(c *Config) { c.PulsesPerRev = 0 },
		"mu order":          func(c *Config) { c.MuSlide = c.MuMax + 0.1 },
		"slip opt":          func(c *Config) { c.SlipOpt = 1 },
		"zero torque":       func(c *Config) { c.MaxBrakeTorqueNm = 0 },
		"zero tau":          func(c *Config) { c.ValveTauS = 0 },
		"zero ticks":        func(c *Config) { c.TCNTTicksPerMs = 0 },
		"threshold order":   func(c *Config) { c.SlipRelease = c.SlipApply },
		"zero apply step":   func(c *Config) { c.ApplyStep = 0 },
		"zero release step": func(c *Config) { c.ReleaseStep = 0 },
		"zero lock persist": func(c *Config) { c.LockPersistMs = 0 },
		"zero slew":         func(c *Config) { c.MaxSlew = 0 },
		"slot out of range": func(c *Config) { c.SlotPMod = NumSlots },
		"negative slot":     func(c *Config) { c.SlotPMod = -1 },
	}
	for name, mut := range mutations {
		t.Run(name, func(t *testing.T) {
			c := DefaultConfig()
			mut(&c)
			if err := c.Validate(); err == nil {
				t.Error("Validate() accepted invalid config")
			}
		})
	}
}

func TestNewInstanceErrors(t *testing.T) {
	bad := DefaultConfig()
	bad.MaxSlew = 0
	if _, err := NewInstance(bad, physics.TestCase{MassKg: 1500, VelocityMS: 30}, nil); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewInstance(DefaultConfig(), physics.TestCase{}, nil); err == nil {
		t.Error("invalid test case accepted")
	}
}

func TestMuCurve(t *testing.T) {
	v := &vehicle{cfg: DefaultConfig()}
	if got := v.mu(0); got != 0 {
		t.Errorf("mu(0) = %v, want 0", got)
	}
	// Peak at the optimum slip.
	peak := v.mu(v.cfg.SlipOpt)
	if peak != v.cfg.MuMax {
		t.Errorf("mu(opt) = %v, want %v", peak, v.cfg.MuMax)
	}
	if v.mu(0.05) >= peak || v.mu(0.6) >= peak {
		t.Error("mu curve not peaked at the optimum")
	}
	// Full slide bottoms out at MuSlide (floating-point tolerance).
	if got := v.mu(1); got < v.cfg.MuSlide-1e-9 || got > v.cfg.MuSlide+1e-9 {
		t.Errorf("mu(1) = %v, want %v", got, v.cfg.MuSlide)
	}
}

func TestPanicStopDecelerates(t *testing.T) {
	cases, err := Grid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		inst, err := NewInstance(DefaultConfig(), tc, nil)
		if err != nil {
			t.Fatal(err)
		}
		v0 := inst.VehicleSpeedMS()
		inst.Run(4000)
		if got := inst.VehicleSpeedMS(); got >= v0-5 {
			t.Errorf("%v: vehicle barely decelerated: %v -> %v", tc, v0, got)
		}
		// The controller actually modulated the brake.
		pwm, err := inst.Bus().Lookup(SigPWM)
		if err != nil {
			t.Fatal(err)
		}
		_ = pwm
		if inst.PressureFrac() < 0 || inst.PressureFrac() > 1 {
			t.Errorf("%v: pressure %v out of range", tc, inst.PressureFrac())
		}
	}
}

func TestAntiLockPreventsSustainedLock(t *testing.T) {
	// With the controller active, the wheel never stays locked long
	// enough to latch `locked` while the vehicle still moves fast.
	inst, err := NewInstance(DefaultConfig(), physics.TestCase{MassKg: 1500, VelocityMS: 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lockSig, err := inst.Bus().Lookup(SigLocked)
	if err != nil {
		t.Fatal(err)
	}
	tripped := false
	inst.Kernel().AddPostHook(func(sim.Millis) {
		if lockSig.ReadBool() {
			tripped = true
		}
	})
	inst.Run(3000)
	if tripped {
		t.Error("locked latched during a controlled stop")
	}
}

func TestControllerModulates(t *testing.T) {
	inst, err := NewInstance(DefaultConfig(), physics.TestCase{MassKg: 1500, VelocityMS: 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	modeSig, err := inst.Bus().Lookup(SigMode)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint16]bool{}
	inst.Kernel().AddPostHook(func(sim.Millis) {
		seen[modeSig.Read()] = true
	})
	inst.Run(3000)
	if !seen[modeApply] || !seen[modeRelease] {
		t.Errorf("controller modes seen = %v, want both apply and release", seen)
	}
}

func TestInstanceDeterminism(t *testing.T) {
	run := func() map[string]uint16 {
		inst, err := NewInstance(DefaultConfig(), physics.TestCase{MassKg: 1100, VelocityMS: 22}, nil)
		if err != nil {
			t.Fatal(err)
		}
		inst.Run(1500)
		return inst.Bus().Snapshot()
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Error("identical runs diverged")
	}
}

func TestReadHookCoverage(t *testing.T) {
	seen := map[string]bool{}
	hook := func(module, _ string, _ *sim.Signal, _ sim.Millis) { seen[module] = true }
	inst, err := NewInstance(DefaultConfig(), physics.TestCase{MassKg: 1500, VelocityMS: 30}, hook)
	if err != nil {
		t.Fatal(err)
	}
	inst.Run(10)
	for _, mod := range []string{ModWSpeed, ModVSpeed, ModSlip, ModCtrl, ModPMod} {
		if !seen[mod] {
			t.Errorf("module %s never performed an instrumented read", mod)
		}
	}
}

func TestTargetAdapter(t *testing.T) {
	target := Target(DefaultConfig())
	if target.Name != "autobrake" {
		t.Errorf("Name = %q", target.Name)
	}
	if got := target.Topology().TotalPairs(); got != 14 {
		t.Errorf("adapter topology pairs = %d, want 14", got)
	}
	inst, err := target.New(physics.TestCase{MassKg: 1500, VelocityMS: 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst.Run(100)
	if _, err := inst.Bus().Lookup(SigPWM); err != nil {
		t.Errorf("adapter instance bus incomplete: %v", err)
	}
}
