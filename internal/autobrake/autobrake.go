// Package autobrake provides a second fault-injection target: an
// anti-lock wheel-slip brake controller for a passenger car. The
// paper's introduction motivates exactly this class of system
// ("consumer-based cost-sensitive systems, such as cars"); analysing
// it alongside the aircraft-arrestment controller shows the framework
// is not tied to one target.
//
// The software has five modules on the same slot-based kernel:
//
//	WSPEED  reads the wheel-speed pulse counter (WSP) and the free
//	        timer (TCNT2) and provides wheel_speed. Period 1 ms.
//	VSPEED  reads the vehicle reference pulse counter (VSP) and
//	        provides veh_speed. Period 1 ms.
//	SLIP    computes the brake slip (per mille) and the latched
//	        `locked` flag from the two speeds. Period 1 ms.
//	CTRL    the slip controller: a two-state apply/release machine
//	        whose mode is fed back to itself (a module-local feedback
//	        loop like CALC's checkpoint index), producing brake_cmd.
//	        Background task.
//	PMOD    drives the valve PWM register from brake_cmd with a slew
//	        limit. Period 4 slots.
//
// System inputs: WSP, VSP, TCNT2. System output: PWM. 14 input/output
// pairs in total.
package autobrake

import (
	"errors"
	"fmt"

	"propane/internal/model"
	"propane/internal/physics"
)

// Module names.
const (
	ModWSpeed = "WSPEED"
	ModVSpeed = "VSPEED"
	ModSlip   = "SLIP"
	ModCtrl   = "CTRL"
	ModPMod   = "PMOD"
)

// Signal names.
const (
	SigWSP        = "WSP"
	SigVSP        = "VSP"
	SigTCNT2      = "TCNT2"
	SigWheelSpeed = "wheel_speed"
	SigVehSpeed   = "veh_speed"
	SigSlip       = "slip"
	SigLocked     = "locked"
	SigMode       = "mode"
	SigBrakeCmd   = "brake_cmd"
	SigPWM        = "PWM"
)

// NumSlots is the kernel slot count (4-ms control cycle).
const NumSlots = 4

// Topology returns the controller's system model: 5 modules, 14
// input/output pairs.
func Topology() *model.System {
	sys, err := model.NewBuilder("autobrake").
		AddModule(ModWSpeed, []string{SigWSP, SigTCNT2}, []string{SigWheelSpeed}).
		AddModule(ModVSpeed, []string{SigVSP}, []string{SigVehSpeed}).
		AddModule(ModSlip, []string{SigWheelSpeed, SigVehSpeed}, []string{SigSlip, SigLocked}).
		AddModule(ModCtrl, []string{SigSlip, SigLocked, SigMode}, []string{SigMode, SigBrakeCmd}).
		AddModule(ModPMod, []string{SigBrakeCmd}, []string{SigPWM}).
		Build()
	if err != nil {
		panic("autobrake: topology invalid: " + err.Error())
	}
	return sys
}

// Config holds the vehicle and software parameters.
type Config struct {
	// WheelRadiusM, WheelInertia and PulsesPerRev describe the wheel
	// and its tooth ring.
	WheelRadiusM float64
	WheelInertia float64
	PulsesPerRev float64
	// MuMax is the peak tyre-road friction coefficient, at slip
	// SlipOpt; MuSlide is the full-slide value.
	MuMax, MuSlide, SlipOpt float64
	// MaxBrakeTorqueNm is the brake torque at full pressure.
	MaxBrakeTorqueNm float64
	// ValveTauS is the hydraulic lag.
	ValveTauS float64
	// TCNTTicksPerMs is the free-timer rate.
	TCNTTicksPerMs uint16
	// SlipApply and SlipRelease are the controller thresholds in per
	// mille: above SlipRelease the controller releases pressure, below
	// SlipApply it re-applies.
	SlipApply, SlipRelease uint16
	// ApplyStep and ReleaseStep are the brake_cmd ramp rates per
	// control cycle.
	ApplyStep, ReleaseStep uint16
	// LockPersistMs is how long the wheel must report zero speed
	// before `locked` latches.
	LockPersistMs uint16
	// MaxSlew is PMOD's PWM slew limit per invocation.
	MaxSlew uint16
	// SlotPMod assigns PMOD's execution slot.
	SlotPMod int
}

// DefaultConfig returns parameters for a mid-size car on dry asphalt.
func DefaultConfig() Config {
	return Config{
		WheelRadiusM:     0.31,
		WheelInertia:     1.2,
		PulsesPerRev:     48,
		MuMax:            0.9,
		MuSlide:          0.6,
		SlipOpt:          0.15,
		MaxBrakeTorqueNm: 2600,
		ValveTauS:        0.030,
		TCNTTicksPerMs:   250,
		SlipApply:        80,  // 8.0 % slip
		SlipRelease:      180, // 18.0 % slip
		ApplyStep:        1200,
		ReleaseStep:      2600,
		LockPersistMs:    120,
		MaxSlew:          6000,
		SlotPMod:         2,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.WheelRadiusM <= 0 || c.WheelInertia <= 0 || c.PulsesPerRev <= 0:
		return errors.New("autobrake: wheel parameters must be positive")
	case c.MuMax <= 0 || c.MuSlide <= 0 || c.MuSlide > c.MuMax || c.SlipOpt <= 0 || c.SlipOpt >= 1:
		return errors.New("autobrake: friction parameters invalid")
	case c.MaxBrakeTorqueNm <= 0 || c.ValveTauS <= 0:
		return errors.New("autobrake: brake parameters must be positive")
	case c.TCNTTicksPerMs == 0:
		return errors.New("autobrake: TCNTTicksPerMs must be positive")
	case c.SlipApply == 0 || c.SlipRelease <= c.SlipApply:
		return errors.New("autobrake: slip thresholds must satisfy 0 < apply < release")
	case c.ApplyStep == 0 || c.ReleaseStep == 0:
		return errors.New("autobrake: ramp steps must be positive")
	case c.LockPersistMs == 0:
		return errors.New("autobrake: LockPersistMs must be positive")
	case c.MaxSlew == 0:
		return errors.New("autobrake: MaxSlew must be positive")
	case c.SlotPMod < 0 || c.SlotPMod >= NumSlots:
		return fmt.Errorf("autobrake: SlotPMod %d out of range [0,%d)", c.SlotPMod, NumSlots)
	}
	return nil
}

// Grid returns a workload grid of panic-stop scenarios: vehicle masses
// in kilograms and initial speeds in m/s.
func Grid(nMass, nSpeed int) ([]physics.TestCase, error) {
	return physics.Grid(nMass, nSpeed, 900, 2100, 18, 38)
}

// vehicle is the quarter-car plant: one wheel carrying a quarter of
// the vehicle mass, a hydraulic brake with first-order lag, and a
// piecewise-linear tyre slip curve.
type vehicle struct {
	cfg Config

	massKg  float64
	speedMS float64 // vehicle longitudinal speed
	omega   float64 // wheel angular speed, rad/s

	pressure float64 // brake pressure fraction
	command  float64

	wheelPulseResidual float64
	wheelPulses        uint64
	vehPulseResidual   float64
	vehPulses          uint64
}

func newVehicle(cfg Config, tc physics.TestCase) (*vehicle, error) {
	if tc.MassKg <= 0 || tc.VelocityMS <= 0 {
		return nil, fmt.Errorf("autobrake: invalid test case %v", tc)
	}
	return &vehicle{
		cfg:     cfg,
		massKg:  tc.MassKg,
		speedMS: tc.VelocityMS,
		omega:   tc.VelocityMS / cfg.WheelRadiusM,
	}, nil
}

// mu evaluates the tyre-road friction curve at slip s in [0,1].
func (v *vehicle) mu(s float64) float64 {
	if s <= 0 {
		return 0
	}
	c := v.cfg
	if s < c.SlipOpt {
		return c.MuMax * s / c.SlipOpt
	}
	m := c.MuMax - (c.MuMax-c.MuSlide)*(s-c.SlipOpt)/(1-c.SlipOpt)
	if m < c.MuSlide {
		m = c.MuSlide
	}
	return m
}

// step advances the plant by dt seconds and returns the wheel and
// vehicle reference pulses emitted.
func (v *vehicle) step(dt float64) (wheelPulses, vehPulses int) {
	c := v.cfg
	v.pressure += (v.command - v.pressure) * dt / c.ValveTauS
	if v.pressure < 0 {
		v.pressure = 0
	}
	if v.pressure > 1 {
		v.pressure = 1
	}

	if v.speedMS <= 0.3 {
		v.speedMS = 0
		v.omega = 0
		return 0, 0
	}

	slip := (v.speedMS - v.omega*c.WheelRadiusM) / v.speedMS
	if slip < 0 {
		slip = 0
	}
	if slip > 1 {
		slip = 1
	}
	const g = 9.81
	quarterMass := v.massKg / 4
	normal := quarterMass * g
	tyreForce := v.mu(slip) * normal

	// Vehicle: decelerated by the tyre force (quarter-car scaling).
	v.speedMS -= tyreForce / quarterMass * dt
	if v.speedMS < 0 {
		v.speedMS = 0
	}

	// Wheel: tyre force spins it up, brake torque spins it down.
	brakeTorque := v.pressure * c.MaxBrakeTorqueNm
	v.omega += (tyreForce*c.WheelRadiusM - brakeTorque) / c.WheelInertia * dt
	if v.omega < 0 {
		v.omega = 0
	}

	// Pulses.
	wheelRate := v.omega / (2 * 3.141592653589793) * c.PulsesPerRev
	v.wheelPulseResidual += wheelRate * dt
	wheelPulses = int(v.wheelPulseResidual)
	v.wheelPulseResidual -= float64(wheelPulses)
	v.wheelPulses += uint64(wheelPulses)

	vehRate := v.speedMS / c.WheelRadiusM / (2 * 3.141592653589793) * c.PulsesPerRev
	v.vehPulseResidual += vehRate * dt
	vehPulses = int(v.vehPulseResidual)
	v.vehPulseResidual -= float64(vehPulses)
	v.vehPulses += uint64(vehPulses)
	return wheelPulses, vehPulses
}
