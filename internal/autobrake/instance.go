package autobrake

import (
	"propane/internal/model"
	"propane/internal/physics"
	"propane/internal/sim"
	"propane/internal/target"
)

// Instance is one fully wired simulation of the brake controller.
type Instance struct {
	kernel  *sim.Kernel
	bus     *sim.Bus
	plant   *vehicle
	pwm     *sim.Signal
	tcntVal uint16
	wspVal  uint16
	vspVal  uint16

	snap     *sim.Snapshotter
	stateful []model.Stateful
}

// NewInstance builds an instance for one panic-stop scenario. onRead
// is the injection/logging trap (nil for uninstrumented runs).
func NewInstance(cfg Config, tc physics.TestCase, onRead sim.ReadHook) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plant, err := newVehicle(cfg, tc)
	if err != nil {
		return nil, err
	}
	kernel, err := sim.NewKernel(NumSlots)
	if err != nil {
		return nil, err
	}
	bus := sim.NewBus()
	sigs := make(map[string]*sim.Signal)
	for _, name := range []string{
		SigWSP, SigVSP, SigTCNT2, SigWheelSpeed, SigVehSpeed,
		SigSlip, SigLocked, SigMode, SigBrakeCmd, SigPWM,
	} {
		sigs[name] = bus.Register(name)
	}

	inst := &Instance{kernel: kernel, bus: bus, plant: plant, pwm: sigs[SigPWM]}

	// Hardware glue: valve command from PWM, plant step, register
	// refresh.
	kernel.AddPreHook(func(sim.Millis) {
		plant.command = float64(inst.pwm.Read()) / 65535
		wp, vp := plant.step(0.001)
		inst.tcntVal += cfg.TCNTTicksPerMs
		sigs[SigTCNT2].Write(inst.tcntVal)
		if wp > 0 {
			inst.wspVal += uint16(wp)
			sigs[SigWSP].Write(inst.wspVal)
		}
		if vp > 0 {
			inst.vspVal += uint16(vp)
			sigs[SigVSP].Write(inst.vspVal)
		}
	})

	ws := &wspeed{
		moduleBase:     moduleBase{name: ModWSpeed, onRead: onRead},
		wspIn:          sigs[SigWSP],
		tcntIn:         sigs[SigTCNT2],
		speedOut:       sigs[SigWheelSpeed],
		ticksPerWindow: uint32(cfg.TCNTTicksPerMs) * speedWindowMs,
	}
	vs := &vspeed{
		moduleBase: moduleBase{name: ModVSpeed, onRead: onRead},
		vspIn:      sigs[SigVSP],
		speedOut:   sigs[SigVehSpeed],
		windowMs:   speedWindowMs,
	}
	sc := &slipCalc{
		moduleBase:    moduleBase{name: ModSlip, onRead: onRead},
		wheelIn:       sigs[SigWheelSpeed],
		vehIn:         sigs[SigVehSpeed],
		slipOut:       sigs[SigSlip],
		lockOut:       sigs[SigLocked],
		lockPersistMs: cfg.LockPersistMs,
	}
	ct := &ctrl{
		moduleBase:  moduleBase{name: ModCtrl, onRead: onRead},
		slipIn:      sigs[SigSlip],
		lockIn:      sigs[SigLocked],
		modeIn:      sigs[SigMode],
		modeOut:     sigs[SigMode],
		cmdOut:      sigs[SigBrakeCmd],
		slipApply:   cfg.SlipApply,
		slipRelease: cfg.SlipRelease,
		applyStep:   cfg.ApplyStep,
		releaseStep: cfg.ReleaseStep,
	}
	pm := &pmod{
		moduleBase: moduleBase{name: ModPMod, onRead: onRead},
		cmdIn:      sigs[SigBrakeCmd],
		pwmOut:     sigs[SigPWM],
		maxSlew:    cfg.MaxSlew,
	}

	kernel.AddEveryTick(ws)
	kernel.AddEveryTick(vs)
	kernel.AddEveryTick(sc)
	kernel.AddBackground(ct)
	if err := kernel.AddSlotted(cfg.SlotPMod, pm); err != nil {
		return nil, err
	}
	inst.snap = sim.NewSnapshotter(kernel, bus)
	// Every component carrying hidden state, in a fixed order the
	// restore side relies on.
	inst.stateful = []model.Stateful{instanceCounters{inst}, plant, ws, vs, sc, ct, pm}
	return inst, nil
}

// Bus returns the signal bus.
func (in *Instance) Bus() *sim.Bus { return in.bus }

// Kernel returns the kernel.
func (in *Instance) Kernel() *sim.Kernel { return in.kernel }

// Run advances the simulation to the horizon.
func (in *Instance) Run(horizon sim.Millis) { in.kernel.Run(horizon, nil) }

// VehicleSpeedMS returns the plant's vehicle speed.
func (in *Instance) VehicleSpeedMS() float64 { return in.plant.speedMS }

// WheelSpeedMS returns the wheel's equivalent linear speed.
func (in *Instance) WheelSpeedMS() float64 {
	return in.plant.omega * in.plant.cfg.WheelRadiusM
}

// PressureFrac returns the brake pressure fraction.
func (in *Instance) PressureFrac() float64 { return in.plant.pressure }

// Target adapts the controller to the campaign engine.
func Target(cfg Config) *target.Target {
	return &target.Target{
		Name:     "autobrake",
		Topology: Topology,
		New: func(tc physics.TestCase, hook sim.ReadHook) (target.RunnableInstance, error) {
			return NewInstance(cfg, tc, hook)
		},
	}
}
