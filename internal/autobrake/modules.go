package autobrake

import (
	"propane/internal/sim"
)

// moduleBase mirrors the arrestor package's instrumented-read helper.
type moduleBase struct {
	name   string
	onRead sim.ReadHook
}

func (m *moduleBase) read(s *sim.Signal, now sim.Millis) uint16 {
	if m.onRead != nil {
		m.onRead(m.name, s.Name(), s, now)
	}
	return s.Read()
}

// Name implements sim.Task.
func (m *moduleBase) Name() string { return m.name }

// speedScale converts pulses-per-window into the 16-bit speed unit
// used on the bus (pulses per 32 ms window × 64, leaving headroom).
const speedWindowMs = 32

// wspeed estimates the wheel speed from pulse-count deltas over a
// TCNT2-measured window.
type wspeed struct {
	moduleBase
	wspIn, tcntIn *sim.Signal
	speedOut      *sim.Signal

	initialized    bool
	lastWSP        uint16
	lastTick       uint16
	windowPulses   uint16
	windowTicks    uint32
	ticksPerWindow uint32
	speed          uint16
}

// Step implements sim.Task.
func (w *wspeed) Step(now sim.Millis) {
	wsp := w.read(w.wspIn, now)
	tcnt := w.read(w.tcntIn, now)
	if !w.initialized {
		w.initialized = true
		w.lastWSP = wsp
		w.lastTick = tcnt
		return
	}
	w.windowPulses += wsp - w.lastWSP
	w.lastWSP = wsp
	w.windowTicks += uint32(tcnt - w.lastTick)
	w.lastTick = tcnt
	if w.windowTicks >= w.ticksPerWindow {
		// Speed in pulses per window, scaled ×64.
		w.speed = w.windowPulses * 64
		w.windowPulses = 0
		w.windowTicks = 0
	}
	w.speedOut.Write(w.speed)
}

// vspeed estimates the vehicle reference speed from the reference
// pulse counter on a fixed millisecond window.
type vspeed struct {
	moduleBase
	vspIn    *sim.Signal
	speedOut *sim.Signal

	initialized  bool
	lastVSP      uint16
	windowPulses uint16
	windowMs     uint16
	elapsed      uint16
	speed        uint16
}

// Step implements sim.Task.
func (v *vspeed) Step(now sim.Millis) {
	vsp := v.read(v.vspIn, now)
	if !v.initialized {
		v.initialized = true
		v.lastVSP = vsp
		return
	}
	v.windowPulses += vsp - v.lastVSP
	v.lastVSP = vsp
	v.elapsed++
	if v.elapsed >= v.windowMs {
		v.speed = v.windowPulses * 64
		v.windowPulses = 0
		v.elapsed = 0
	}
	v.speedOut.Write(v.speed)
}

// slipCalc computes the brake slip in per mille and latches `locked`
// after a sustained period of zero wheel speed while the vehicle still
// moves — the same persistence design that makes the arrestment
// system's `stopped` output non-permeable to transients (OB2).
type slipCalc struct {
	moduleBase
	wheelIn, vehIn    *sim.Signal
	slipOut, lockOut  *sim.Signal
	lockPersistMs     uint16
	zeroWheelStreakMs uint16
	locked            bool
}

// Step implements sim.Task.
func (s *slipCalc) Step(now sim.Millis) {
	wheel := s.read(s.wheelIn, now)
	veh := s.read(s.vehIn, now)

	var slip uint16
	if veh > 0 && wheel < veh {
		slip = uint16(uint32(veh-wheel) * 1000 / uint32(veh))
	}

	if wheel == 0 && veh > 0 {
		if s.zeroWheelStreakMs < ^uint16(0) {
			s.zeroWheelStreakMs++
		}
	} else {
		s.zeroWheelStreakMs = 0
	}
	if s.zeroWheelStreakMs >= s.lockPersistMs {
		s.locked = true
	}

	s.slipOut.Write(slip)
	s.lockOut.WriteBool(s.locked)
}

// Controller modes.
const (
	modeApply   = 0
	modeRelease = 1
)

// ctrl is the slip controller: a two-state apply/release machine. The
// mode is written to the bus and read back on the next invocation —
// the module-local feedback loop of this system.
type ctrl struct {
	moduleBase
	slipIn, lockIn, modeIn *sim.Signal
	modeOut, cmdOut        *sim.Signal

	slipApply, slipRelease uint16
	applyStep, releaseStep uint16
	cmd                    uint16
}

// Step implements sim.Task.
func (c *ctrl) Step(now sim.Millis) {
	slip := c.read(c.slipIn, now)
	locked := c.read(c.lockIn, now) != 0
	mode := c.read(c.modeIn, now)
	if mode > modeRelease {
		mode = modeRelease // defensive clamp of the feedback state
	}

	switch {
	case locked || slip >= c.slipRelease:
		mode = modeRelease
	case slip <= c.slipApply:
		mode = modeApply
	}

	if mode == modeApply {
		if c.cmd <= ^uint16(0)-c.applyStep {
			c.cmd += c.applyStep
		} else {
			c.cmd = ^uint16(0)
		}
	} else {
		if c.cmd >= c.releaseStep {
			c.cmd -= c.releaseStep
		} else {
			c.cmd = 0
		}
	}

	c.modeOut.Write(mode)
	c.cmdOut.Write(c.cmd)
}

// pmod drives the valve PWM register with a slew limit.
type pmod struct {
	moduleBase
	cmdIn  *sim.Signal
	pwmOut *sim.Signal

	maxSlew uint16
	current uint16
}

// Step implements sim.Task.
func (p *pmod) Step(now sim.Millis) {
	target := p.read(p.cmdIn, now)
	switch {
	case target > p.current:
		d := target - p.current
		if d > p.maxSlew {
			d = p.maxSlew
		}
		p.current += d
	case target < p.current:
		d := p.current - target
		if d > p.maxSlew {
			d = p.maxSlew
		}
		p.current -= d
	}
	p.pwmOut.Write(p.current)
}
