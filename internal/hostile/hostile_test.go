package hostile

import (
	"strings"
	"testing"

	"propane/internal/inject"
	"propane/internal/physics"
)

var testCase = physics.TestCase{MassKg: 12000, VelocityMS: 55}

func TestGoldenRunIsBenign(t *testing.T) {
	inst, err := NewInstance(testCase, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst.Kernel().SetBudget(RunBudget(500))
	inst.Run(500)
	if inst.Kernel().Exhausted() {
		t.Fatal("uninjected hostile run exhausted its budget")
	}
	out, err := inst.Bus().Lookup(SigOut)
	if err != nil {
		t.Fatal(err)
	}
	if out.Read() == 0 {
		t.Error("system output never driven")
	}
}

func TestTopologyShape(t *testing.T) {
	sys := Topology()
	if got := len(sys.ModuleNames()); got != 4 {
		t.Errorf("modules = %d, want 4", got)
	}
	if ins := sys.SystemInputs(); len(ins) != 1 || ins[0] != SigCmd {
		t.Errorf("system inputs = %v, want [%s]", ins, SigCmd)
	}
	if outs := sys.SystemOutputs(); len(outs) != 1 || outs[0] != SigOut {
		t.Errorf("system outputs = %v, want [%s]", outs, SigOut)
	}
}

func TestMineCrashesOnPoisonBit(t *testing.T) {
	trap := inject.NewTrap(inject.Injection{
		Module: ModMine, Signal: SigVal, At: 100, Model: inject.BitFlip{Bit: 15},
	})
	inst, err := NewInstance(testCase, trap.Hook())
	if err != nil {
		t.Fatal(err)
	}
	inst.Kernel().SetBudget(RunBudget(500))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("poisoned MINE did not panic")
		}
		if !strings.Contains(r.(string), "mine tripped") {
			t.Errorf("panic %v, want a mine trip", r)
		}
		if _, fired := trap.Fired(); !fired {
			t.Error("trap did not fire before the crash")
		}
	}()
	inst.Run(500)
}

func TestTarpitHangsOnPoisonBit(t *testing.T) {
	trap := inject.NewTrap(inject.Injection{
		Module: ModTarpit, Signal: SigTick, At: 100, Model: inject.BitFlip{Bit: 15},
	})
	inst, err := NewInstance(testCase, trap.Hook())
	if err != nil {
		t.Fatal(err)
	}
	inst.Kernel().SetBudget(RunBudget(500))
	end := inst.Kernel().Run(500, nil)
	if !inst.Kernel().Exhausted() {
		t.Fatal("poisoned TARPIT did not exhaust the budget")
	}
	if end >= 500 {
		t.Errorf("run reached the horizon (t=%d) despite the hang", end)
	}
}

func TestLowBitInjectionMerelyDeviates(t *testing.T) {
	trap := inject.NewTrap(inject.Injection{
		Module: ModMine, Signal: SigVal, At: 100, Model: inject.BitFlip{Bit: 3},
	})
	inst, err := NewInstance(testCase, trap.Hook())
	if err != nil {
		t.Fatal(err)
	}
	inst.Kernel().SetBudget(RunBudget(500))
	inst.Run(500)
	if inst.Kernel().Exhausted() {
		t.Error("low-bit injection tripped the watchdog")
	}
	if _, fired := trap.Fired(); !fired {
		t.Error("trap never fired")
	}
}
