// Package hostile provides a deliberately adversarial target system
// for exercising the supervised execution layer: a small pipeline in
// which an injected error can crash a module (a Go panic) or drive a
// module into a non-terminating loop. The paper's PROPANE tool
// (Section 4) classifies exactly these SWIFI outcomes — crash and
// hang — alongside data deviation; this target makes them reproducible
// on demand, so the campaign engine's watchdog, crash classification
// and quarantine paths can be tested and benchmarked against a target
// that does not politely return.
//
// Topology (all signals 16-bit, golden values always below 0x8000):
//
//	hs_cmd  ──▶ FEED ──▶ hs_val  ──▶ MINE   ──▶ hs_mine ─┐
//	                 └─▶ hs_tick ──▶ TARPIT ──▶ hs_pit  ─┴▶ SINK ──▶ hs_out
//
// MINE panics when it reads a value with bit 15 set; TARPIT spins
// forever (charging the kernel's step budget) when it reads a value
// with bit 15 set. A bit-15 flip injected on MINE's or TARPIT's input
// therefore produces a deterministic crash or hang, while flips on
// lower bits propagate as ordinary data deviations.
package hostile

import (
	"fmt"

	"propane/internal/model"
	"propane/internal/physics"
	"propane/internal/sim"
	"propane/internal/target"
)

// Module and signal names.
const (
	ModFeed   = "FEED"
	ModMine   = "MINE"
	ModTarpit = "TARPIT"
	ModSink   = "SINK"

	SigCmd  = "hs_cmd"
	SigVal  = "hs_val"
	SigTick = "hs_tick"
	SigMine = "hs_mine"
	SigPit  = "hs_pit"
	SigOut  = "hs_out"
)

// poisonBit is the bit whose corruption arms the hostile behaviour:
// golden values never have it set.
const poisonBit = 0x8000

// Topology returns the module/signal decomposition of the hostile
// pipeline.
func Topology() *model.System {
	sys, err := model.NewBuilder("hostile").
		AddModule(ModFeed, []string{SigCmd}, []string{SigVal, SigTick}).
		AddModule(ModMine, []string{SigVal}, []string{SigMine}).
		AddModule(ModTarpit, []string{SigTick}, []string{SigPit}).
		AddModule(ModSink, []string{SigMine, SigPit}, []string{SigOut}).
		Build()
	if err != nil {
		// The topology is a compile-time constant; failure here is a
		// programming error in this package.
		panic("hostile: invalid topology: " + err.Error())
	}
	return sys
}

// Instance is one wired simulation of the hostile pipeline.
type Instance struct {
	kernel *sim.Kernel
	bus    *sim.Bus
	snap   *sim.Snapshotter
}

// Bus implements target.Instance.
func (in *Instance) Bus() *sim.Bus { return in.bus }

// Kernel implements target.Instance.
func (in *Instance) Kernel() *sim.Kernel { return in.kernel }

// Run implements target.RunnableInstance.
func (in *Instance) Run(horizon sim.Millis) { in.kernel.Run(horizon, nil) }

// Checkpoint implements target.Checkpointable. Every hostile module
// is a pure function of its inputs and the current tick, so the
// sim-layer capture (kernel time, budget accounting, bus signals) is
// the complete state — which also means a checkpoint taken before a
// poison bit arms MINE or TARPIT restores to an instance that crashes
// or hangs exactly as a full replay would.
func (in *Instance) Checkpoint() (*sim.Snapshot, error) { return in.snap.Capture(), nil }

// Restore implements target.Checkpointable.
func (in *Instance) Restore(snap *sim.Snapshot) error { return in.snap.Restore(snap) }

// mod is the shared instrumented-read helper (the arrestor/autobrake
// idiom).
type mod struct {
	name   string
	onRead sim.ReadHook
}

func (m *mod) Name() string { return m.name }

func (m *mod) read(s *sim.Signal, now sim.Millis) uint16 {
	if m.onRead != nil {
		m.onRead(m.name, s.Name(), s, now)
	}
	return s.Read()
}

// feed derives the pipeline's working values from the command input.
type feed struct {
	mod
	cmd, val, tick *sim.Signal
}

func (f *feed) Step(now sim.Millis) {
	c := f.read(f.cmd, now)
	// Keep golden values strictly below the poison bit.
	f.val.Write((c + uint16(now)) & 0x7FFF)
	f.tick.Write((c ^ uint16(now*3)) & 0x7FFF)
}

// mine passes its input through — unless the value carries the poison
// bit, in which case it panics like target code dereferencing a
// corrupted pointer.
type mine struct {
	mod
	in, out *sim.Signal
}

func (m *mine) Step(now sim.Millis) {
	v := m.read(m.in, now)
	if v&poisonBit != 0 {
		panic(fmt.Sprintf("hostile: mine tripped by %#04x at t=%dms", v, now))
	}
	m.out.Write(v)
}

// tarpit passes its input through — unless the value carries the
// poison bit, in which case it spins forever, charging the kernel's
// step budget each iteration so only the watchdog can end the run.
type tarpit struct {
	mod
	kernel  *sim.Kernel
	in, out *sim.Signal
}

func (t *tarpit) Step(now sim.Millis) {
	v := t.read(t.in, now)
	for v&poisonBit != 0 {
		t.kernel.Charge(1)
	}
	t.out.Write(v)
}

// sink folds the two branches into the system output.
type sink struct {
	mod
	a, b, out *sim.Signal
}

func (s *sink) Step(now sim.Millis) {
	s.out.Write(s.read(s.a, now) + s.read(s.b, now))
}

// NewInstance builds a fresh hostile instance for one workload point.
// The test case selects the command profile (mass and velocity are
// folded into the base command value), so distinct cases produce
// distinct golden traces. hook is the injection/logging trap.
func NewInstance(tc physics.TestCase, hook sim.ReadHook) (*Instance, error) {
	kernel, err := sim.NewKernel(1)
	if err != nil {
		return nil, err
	}
	bus := sim.NewBus()
	cmd := bus.Register(SigCmd)
	val := bus.Register(SigVal)
	tick := bus.Register(SigTick)
	mineOut := bus.Register(SigMine)
	pit := bus.Register(SigPit)
	out := bus.Register(SigOut)

	base := uint16(int64(tc.MassKg/10)+int64(tc.VelocityMS)) & 0x3FFF
	kernel.AddPreHook(func(now sim.Millis) {
		cmd.Write((base + uint16(now/16)) & 0x3FFF)
	})

	kernel.AddEveryTick(&feed{mod: mod{name: ModFeed, onRead: hook}, cmd: cmd, val: val, tick: tick})
	kernel.AddEveryTick(&mine{mod: mod{name: ModMine, onRead: hook}, in: val, out: mineOut})
	kernel.AddEveryTick(&tarpit{mod: mod{name: ModTarpit, onRead: hook}, kernel: kernel, in: tick, out: pit})
	kernel.AddEveryTick(&sink{mod: mod{name: ModSink, onRead: hook}, a: mineOut, b: pit, out: out})
	return &Instance{kernel: kernel, bus: bus, snap: sim.NewSnapshotter(kernel, bus)}, nil
}

// Target adapts the hostile pipeline to the campaign engine.
func Target() *target.Target {
	return &target.Target{
		Name:     "hostile",
		Topology: Topology,
		New: func(tc physics.TestCase, hook sim.ReadHook) (target.RunnableInstance, error) {
			return NewInstance(tc, hook)
		},
	}
}

// RunBudget returns a step budget generous enough for any benign run
// to the given horizon (4 modules per tick plus headroom) while still
// tripping within milliseconds of wall time on a poisoned TARPIT.
func RunBudget(horizon sim.Millis) sim.Budget {
	return sim.Budget{Steps: int64(horizon)*16 + 1024}
}
