// Package physics simulates the environment of the paper's target
// system (Fig. 7): an incoming aircraft engaging a cable attached to
// rotating tape drums, retarded by a hydraulic brake whose pressure is
// commanded by the control software. The paper ported the authors'
// environment simulator to the desktop; this package plays the same
// role, providing a deterministic, workload-dependent world so that
// permeability estimates are driven by realistic input distributions
// (Section 6).
//
// The model is intentionally simple but dimensionally sensible:
//
//   - the aircraft (mass m, engage velocity v0) decelerates under the
//     brake force F = maxBrakeForce · pressureFraction plus a small
//     passive drag;
//   - cable payout equals aircraft travel; the drum's tooth wheel
//     emits PulsesPerMeter pulses per metre of payout;
//   - the hydraulic pressure follows the commanded valve value with a
//     first-order lag (time constant ValveTau).
package physics

import (
	"errors"
	"fmt"
)

// TestCase is one workload point: an incoming aircraft.
type TestCase struct {
	// MassKg is the aircraft mass in kilograms.
	MassKg float64
	// VelocityMS is the engagement velocity in metres per second.
	VelocityMS float64
}

// String renders the test case compactly.
func (tc TestCase) String() string {
	return fmt.Sprintf("m=%.0fkg v=%.0fm/s", tc.MassKg, tc.VelocityMS)
}

// Grid returns nMass×nVel test cases with masses and velocities
// uniformly distributed over [massLo, massHi] kg and [velLo, velHi]
// m/s. The paper's campaign uses Grid(5, 5) over 8000–20000 kg and
// 40–80 m/s, giving 25 cases.
func Grid(nMass, nVel int, massLo, massHi, velLo, velHi float64) ([]TestCase, error) {
	if nMass < 1 || nVel < 1 {
		return nil, errors.New("physics: grid dimensions must be >= 1")
	}
	if massLo > massHi || velLo > velHi {
		return nil, errors.New("physics: grid bounds out of order")
	}
	cases := make([]TestCase, 0, nMass*nVel)
	for i := 0; i < nMass; i++ {
		m := massLo
		if nMass > 1 {
			m += (massHi - massLo) * float64(i) / float64(nMass-1)
		}
		for j := 0; j < nVel; j++ {
			v := velLo
			if nVel > 1 {
				v += (velHi - velLo) * float64(j) / float64(nVel-1)
			}
			cases = append(cases, TestCase{MassKg: m, VelocityMS: v})
		}
	}
	return cases, nil
}

// PaperGrid returns the paper's 25 test cases: 5 masses uniformly in
// 8000–20000 kg crossed with 5 velocities uniformly in 40–80 m/s.
func PaperGrid() []TestCase {
	cases, err := Grid(5, 5, 8000, 20000, 40, 80)
	if err != nil {
		// Constant arguments; failure is a programming error.
		panic("physics: paper grid invalid: " + err.Error())
	}
	return cases
}

// Config holds the arrestment-gear parameters.
type Config struct {
	// PulsesPerMeter is the tooth-wheel resolution of the rotation
	// sensor (pulses emitted per metre of cable payout).
	PulsesPerMeter float64
	// MaxBrakeForceN is the retarding force at full pressure, newtons.
	MaxBrakeForceN float64
	// ValveTauS is the first-order time constant of the hydraulic
	// valve and brake circuit, seconds.
	ValveTauS float64
	// DragNsPerM is the passive drag coefficient in N·s/m (cable and
	// tape friction, aerodynamics).
	DragNsPerM float64
	// StopVelocityMS is the velocity below which the aircraft is
	// considered physically stopped.
	StopVelocityMS float64
	// NumBrakes is the number of independently commanded brake
	// circuits (1 in the paper's single-node setup, where the master's
	// retracting force is applied on both cable ends; 2 in the real
	// master/slave configuration, one drum per node). Zero is
	// normalised to 1. Each brake contributes MaxBrakeForceN/NumBrakes
	// at full pressure.
	NumBrakes int
}

// DefaultConfig returns gear parameters sized for the paper's workload
// envelope (8–20 t aircraft at 40–80 m/s on a ~300 m runway).
func DefaultConfig() Config {
	return Config{
		PulsesPerMeter: 8,
		MaxBrakeForceN: 450e3,
		ValveTauS:      0.15,
		DragNsPerM:     300,
		StopVelocityMS: 0.5,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.PulsesPerMeter <= 0:
		return errors.New("physics: PulsesPerMeter must be positive")
	case c.MaxBrakeForceN <= 0:
		return errors.New("physics: MaxBrakeForceN must be positive")
	case c.ValveTauS <= 0:
		return errors.New("physics: ValveTauS must be positive")
	case c.DragNsPerM < 0:
		return errors.New("physics: DragNsPerM must be non-negative")
	case c.StopVelocityMS <= 0:
		return errors.New("physics: StopVelocityMS must be positive")
	case c.NumBrakes < 0:
		return errors.New("physics: NumBrakes must be non-negative")
	}
	return nil
}

// brakes returns the effective brake count (zero normalised to one).
func (c Config) brakes() int {
	if c.NumBrakes < 1 {
		return 1
	}
	return c.NumBrakes
}

// World is the state of one arrestment: one aircraft, one drum, one
// hydraulic brake. It advances in fixed steps via Step.
type World struct {
	cfg Config
	tc  TestCase

	positionM  float64
	velocityMS float64
	pressure   []float64 // actual pressure per brake, fraction of full scale
	command    []float64 // commanded pressure per brake, fraction of full scale

	pulseResidual float64
	pulseCount    uint64
}

// NewWorld creates a world for one test case. The aircraft starts at
// position 0 moving at the engagement velocity with the brake
// unpressurised.
func NewWorld(cfg Config, tc TestCase) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tc.MassKg <= 0 || tc.VelocityMS <= 0 {
		return nil, fmt.Errorf("physics: invalid test case %v", tc)
	}
	n := cfg.brakes()
	return &World{
		cfg:        cfg,
		tc:         tc,
		velocityMS: tc.VelocityMS,
		pressure:   make([]float64, n),
		command:    make([]float64, n),
	}, nil
}

// NumBrakes returns the number of brake circuits of this world.
func (w *World) NumBrakes() int { return len(w.command) }

// SetCommand sets the commanded pressure of brake 0 as a fraction of
// full scale (the glue layer derives it from the TOC2 register).
// Values outside [0, 1] are clamped.
func (w *World) SetCommand(frac float64) { _ = w.SetBrakeCommand(0, frac) }

// SetBrakeCommand sets the commanded pressure of brake i.
func (w *World) SetBrakeCommand(i int, frac float64) error {
	if i < 0 || i >= len(w.command) {
		return fmt.Errorf("physics: brake %d out of range [0,%d)", i, len(w.command))
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	w.command[i] = frac
	return nil
}

// Step advances the world by dt seconds (the kernel calls it with
// 0.001). It returns the number of new tooth-wheel pulses emitted
// during the step.
func (w *World) Step(dt float64) int {
	// Hydraulic first-order lag toward each brake's commanded pressure.
	meanPressure := 0.0
	for i := range w.pressure {
		w.pressure[i] += (w.command[i] - w.pressure[i]) * dt / w.cfg.ValveTauS
		if w.pressure[i] < 0 {
			w.pressure[i] = 0
		}
		if w.pressure[i] > 1 {
			w.pressure[i] = 1
		}
		meanPressure += w.pressure[i]
	}
	meanPressure /= float64(len(w.pressure))

	if w.Stopped() {
		w.velocityMS = 0
		return 0
	}

	force := w.cfg.MaxBrakeForceN*meanPressure + w.cfg.DragNsPerM*w.velocityMS
	accel := -force / w.tc.MassKg
	w.velocityMS += accel * dt
	if w.velocityMS < w.cfg.StopVelocityMS {
		w.velocityMS = 0
	}
	travel := w.velocityMS * dt
	w.positionM += travel

	w.pulseResidual += travel * w.cfg.PulsesPerMeter
	pulses := int(w.pulseResidual)
	w.pulseResidual -= float64(pulses)
	w.pulseCount += uint64(pulses)
	return pulses
}

// VelocityMS returns the aircraft velocity in m/s.
func (w *World) VelocityMS() float64 { return w.velocityMS }

// PositionM returns the cable payout (aircraft travel) in metres.
func (w *World) PositionM() float64 { return w.positionM }

// PressureFrac returns brake 0's actual pressure as a fraction of
// full scale.
func (w *World) PressureFrac() float64 { return w.pressure[0] }

// BrakePressureFrac returns brake i's actual pressure fraction.
func (w *World) BrakePressureFrac(i int) (float64, error) {
	if i < 0 || i >= len(w.pressure) {
		return 0, fmt.Errorf("physics: brake %d out of range [0,%d)", i, len(w.pressure))
	}
	return w.pressure[i], nil
}

// CommandFrac returns brake 0's commanded pressure fraction.
func (w *World) CommandFrac() float64 { return w.command[0] }

// PulseCount returns the total tooth-wheel pulses emitted so far.
func (w *World) PulseCount() uint64 { return w.pulseCount }

// Stopped reports whether the aircraft has come to rest (velocity
// below the configured stop threshold).
func (w *World) Stopped() bool { return w.velocityMS < w.cfg.StopVelocityMS }

// TestCase returns the workload point the world was created for.
func (w *World) TestCase() TestCase { return w.tc }
