package physics

import "fmt"

// worldState is the opaque checkpoint state of a World (see
// model.Stateful, which World satisfies structurally — this package
// stays free of simulation-framework imports).
type worldState struct {
	positionM     float64
	velocityMS    float64
	pressure      []float64
	command       []float64
	pulseResidual float64
	pulseCount    uint64
}

// State captures the world's dynamic state. The per-brake slices are
// deep-copied so later Steps cannot mutate the capture.
func (w *World) State() any {
	return worldState{
		positionM:     w.positionM,
		velocityMS:    w.velocityMS,
		pressure:      append([]float64(nil), w.pressure...),
		command:       append([]float64(nil), w.command...),
		pulseResidual: w.pulseResidual,
		pulseCount:    w.pulseCount,
	}
}

// Restore overwrites the world's dynamic state from a State capture
// taken on a world with the same brake count.
func (w *World) Restore(state any) error {
	s, ok := state.(worldState)
	if !ok {
		return fmt.Errorf("physics: state is %T, want worldState", state)
	}
	if len(s.pressure) != len(w.pressure) || len(s.command) != len(w.command) {
		return fmt.Errorf("physics: state has %d brakes, world has %d",
			len(s.pressure), len(w.pressure))
	}
	w.positionM = s.positionM
	w.velocityMS = s.velocityMS
	copy(w.pressure, s.pressure)
	copy(w.command, s.command)
	w.pulseResidual = s.pulseResidual
	w.pulseCount = s.pulseCount
	return nil
}
