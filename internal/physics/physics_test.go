package physics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGrid(t *testing.T) {
	cases, err := Grid(3, 2, 100, 300, 10, 20)
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	if len(cases) != 6 {
		t.Fatalf("len = %d, want 6", len(cases))
	}
	// Corners of the grid are the bounds.
	if cases[0].MassKg != 100 || cases[0].VelocityMS != 10 {
		t.Errorf("first case = %v, want m=100 v=10", cases[0])
	}
	last := cases[len(cases)-1]
	if last.MassKg != 300 || last.VelocityMS != 20 {
		t.Errorf("last case = %v, want m=300 v=20", last)
	}
}

func TestGridSinglePoint(t *testing.T) {
	cases, err := Grid(1, 1, 5000, 9000, 40, 80)
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	if len(cases) != 1 || cases[0].MassKg != 5000 || cases[0].VelocityMS != 40 {
		t.Errorf("cases = %v, want single m=5000 v=40", cases)
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := Grid(0, 1, 1, 2, 1, 2); err == nil {
		t.Error("Grid(0,1) succeeded")
	}
	if _, err := Grid(1, 0, 1, 2, 1, 2); err == nil {
		t.Error("Grid(1,0) succeeded")
	}
	if _, err := Grid(2, 2, 3, 1, 1, 2); err == nil {
		t.Error("Grid with reversed mass bounds succeeded")
	}
	if _, err := Grid(2, 2, 1, 2, 5, 1); err == nil {
		t.Error("Grid with reversed velocity bounds succeeded")
	}
}

func TestPaperGrid(t *testing.T) {
	cases := PaperGrid()
	if len(cases) != 25 {
		t.Fatalf("paper grid has %d cases, want 25", len(cases))
	}
	for _, tc := range cases {
		if tc.MassKg < 8000 || tc.MassKg > 20000 {
			t.Errorf("mass %v out of paper range", tc.MassKg)
		}
		if tc.VelocityMS < 40 || tc.VelocityMS > 80 {
			t.Errorf("velocity %v out of paper range", tc.VelocityMS)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.PulsesPerMeter = 0 },
		func(c *Config) { c.MaxBrakeForceN = -1 },
		func(c *Config) { c.ValveTauS = 0 },
		func(c *Config) { c.DragNsPerM = -1 },
		func(c *Config) { c.StopVelocityMS = 0 },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewWorldErrors(t *testing.T) {
	if _, err := NewWorld(Config{}, TestCase{MassKg: 1, VelocityMS: 1}); err == nil {
		t.Error("NewWorld with zero config succeeded")
	}
	if _, err := NewWorld(DefaultConfig(), TestCase{MassKg: 0, VelocityMS: 50}); err == nil {
		t.Error("NewWorld with zero mass succeeded")
	}
	if _, err := NewWorld(DefaultConfig(), TestCase{MassKg: 10000, VelocityMS: 0}); err == nil {
		t.Error("NewWorld with zero velocity succeeded")
	}
}

func TestCoastingWithoutBrake(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DragNsPerM = 0
	w, err := NewWorld(cfg, TestCase{MassKg: 10000, VelocityMS: 60})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ { // 1 s
		w.Step(0.001)
	}
	if math.Abs(w.VelocityMS()-60) > 1e-6 {
		t.Errorf("velocity after coasting = %v, want 60", w.VelocityMS())
	}
	if math.Abs(w.PositionM()-60) > 0.1 {
		t.Errorf("position after 1 s at 60 m/s = %v, want ~60", w.PositionM())
	}
	// Pulses: 60 m at 8 pulses/m.
	if got := w.PulseCount(); got < 475 || got > 481 {
		t.Errorf("pulses = %d, want ~480", got)
	}
}

func TestBrakingDeceleratesAndStops(t *testing.T) {
	cfg := DefaultConfig()
	w, err := NewWorld(cfg, TestCase{MassKg: 8000, VelocityMS: 40})
	if err != nil {
		t.Fatal(err)
	}
	w.SetCommand(1.0)
	steps := 0
	for !w.Stopped() && steps < 60000 {
		w.Step(0.001)
		steps++
	}
	if !w.Stopped() {
		t.Fatalf("aircraft did not stop within 60 s (v=%v)", w.VelocityMS())
	}
	// Full brake on the lightest/slowest case stops well inside the
	// runway: a = 450kN/8t ≈ 56 m/s², stop in < 1.5 s and < 30 m.
	if w.PositionM() > 50 {
		t.Errorf("stop distance = %v m, want < 50", w.PositionM())
	}
	if w.VelocityMS() != 0 {
		t.Errorf("velocity after stop = %v, want 0", w.VelocityMS())
	}
	// Once stopped, further steps emit no pulses and do not move.
	p, pos := w.PulseCount(), w.PositionM()
	for i := 0; i < 100; i++ {
		if got := w.Step(0.001); got != 0 {
			t.Fatalf("stopped world emitted %d pulses", got)
		}
	}
	if w.PulseCount() != p || w.PositionM() != pos {
		t.Error("stopped world kept moving")
	}
}

func TestValveLag(t *testing.T) {
	cfg := DefaultConfig()
	w, err := NewWorld(cfg, TestCase{MassKg: 20000, VelocityMS: 80})
	if err != nil {
		t.Fatal(err)
	}
	w.SetCommand(1.0)
	w.Step(0.001)
	if w.PressureFrac() <= 0 || w.PressureFrac() > 0.05 {
		t.Errorf("pressure after 1 ms = %v, want small but positive", w.PressureFrac())
	}
	// After ~5 time constants the pressure approaches the command.
	for i := 0; i < int(5*cfg.ValveTauS*1000); i++ {
		w.Step(0.001)
	}
	if w.PressureFrac() < 0.95 {
		t.Errorf("pressure after 5τ = %v, want > 0.95", w.PressureFrac())
	}
	// Clamping of commands.
	w.SetCommand(2.0)
	if w.CommandFrac() != 1 {
		t.Errorf("CommandFrac = %v, want clamped to 1", w.CommandFrac())
	}
	w.SetCommand(-1)
	if w.CommandFrac() != 0 {
		t.Errorf("CommandFrac = %v, want clamped to 0", w.CommandFrac())
	}
}

// TestEnergyMonotonicity: with any constant command, velocity is
// non-increasing and position non-decreasing.
func TestEnergyMonotonicity(t *testing.T) {
	prop := func(cmd8 uint8, massSel, velSel uint8) bool {
		cmd := float64(cmd8) / 255
		tc := TestCase{
			MassKg:     8000 + float64(massSel%5)*3000,
			VelocityMS: 40 + float64(velSel%5)*10,
		}
		w, err := NewWorld(DefaultConfig(), tc)
		if err != nil {
			return false
		}
		w.SetCommand(cmd)
		vPrev, pPrev := w.VelocityMS(), w.PositionM()
		for i := 0; i < 2000; i++ {
			w.Step(0.001)
			if w.VelocityMS() > vPrev+1e-9 || w.PositionM() < pPrev-1e-9 {
				return false
			}
			vPrev, pPrev = w.VelocityMS(), w.PositionM()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, uint64) {
		w, err := NewWorld(DefaultConfig(), TestCase{MassKg: 14000, VelocityMS: 60})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3000; i++ {
			w.SetCommand(float64(i%1000) / 1000)
			w.Step(0.001)
		}
		return w.PositionM(), w.PulseCount()
	}
	p1, c1 := run()
	p2, c2 := run()
	if p1 != p2 || c1 != c2 {
		t.Errorf("runs diverged: (%v,%d) vs (%v,%d)", p1, c1, p2, c2)
	}
}

func TestTestCaseString(t *testing.T) {
	s := TestCase{MassKg: 8000, VelocityMS: 40}.String()
	if s != "m=8000kg v=40m/s" {
		t.Errorf("String() = %q", s)
	}
}
