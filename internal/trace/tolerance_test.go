package trace

import (
	"testing"

	"propane/internal/sim"
)

func TestTolerancesWithin(t *testing.T) {
	tol := Tolerances{"p": 5}
	tests := []struct {
		sig  string
		a, b uint16
		want bool
	}{
		{"p", 100, 100, true},
		{"p", 100, 105, true},
		{"p", 105, 100, true},
		{"p", 100, 106, false},
		{"q", 100, 101, false}, // no entry: exact comparison
		{"q", 7, 7, true},
		// Wrap-around distances stay conservative: 0 vs 65535 is a
		// "difference" of 1 in modular arithmetic.
		{"p", 0, 0xFFFF, true},
		{"p", 0, 0xFFF0, false},
	}
	for _, tt := range tests {
		if got := tol.within(tt.sig, tt.a, tt.b); got != tt.want {
			t.Errorf("within(%s, %d, %d) = %v, want %v", tt.sig, tt.a, tt.b, got, tt.want)
		}
	}
	// nil Tolerances behaves exactly.
	var none Tolerances
	if none.within("p", 1, 2) {
		t.Error("nil tolerances accepted a deviation")
	}
	if !none.within("p", 3, 3) {
		t.Error("nil tolerances rejected equality")
	}
}

func TestCompareTol(t *testing.T) {
	golden := makeTrace(map[string][]uint16{"x": {100, 200, 300}})
	run := makeTrace(map[string][]uint16{"x": {102, 200, 330}})
	exact, err := Compare(golden, run)
	if err != nil {
		t.Fatal(err)
	}
	if exact["x"].Count != 2 {
		t.Errorf("exact diff count = %d, want 2", exact["x"].Count)
	}
	loose, err := CompareTol(golden, run, Tolerances{"x": 10})
	if err != nil {
		t.Fatal(err)
	}
	if loose["x"].Count != 1 || loose["x"].First != 2 {
		t.Errorf("tolerant diff = %+v, want only the 330 sample", loose["x"])
	}
	all, err := CompareTol(golden, run, Tolerances{"x": 50})
	if err != nil {
		t.Fatal(err)
	}
	if all["x"].Differs() {
		t.Errorf("wide tolerance still flagged: %+v", all["x"])
	}
}

func TestStreamComparatorTolerances(t *testing.T) {
	golden := makeTrace(map[string][]uint16{"p": {10, 20, 30}})
	bus := sim.NewBus()
	p := bus.Register("p")
	sc, err := NewStreamComparator(golden, bus)
	if err != nil {
		t.Fatal(err)
	}
	sc.SetTolerances(Tolerances{"p": 3})
	hook := sc.Hook()
	for i, v := range []uint16{12, 26, 30} { // +2 ok, +6 flagged, exact ok
		p.Write(v)
		hook(sim.Millis(i))
	}
	d := sc.Diffs()["p"]
	if d.Count != 1 || d.First != 1 {
		t.Errorf("tolerant stream diff = %+v, want single deviation at t=1", d)
	}
}
