package trace

import "testing"

func TestClassify(t *testing.T) {
	const window = 100
	tests := []struct {
		name string
		diff Diff
		want ErrorClass
	}{
		{"no deviation", Diff{First: -1, Last: -1, Count: 0}, ClassNone},
		{"recovered", Diff{First: 10, Last: 50, Count: 41}, ClassTransient},
		{"single blip", Diff{First: 10, Last: 10, Count: 1}, ClassTransient},
		{"still deviating at end", Diff{First: 10, Last: 99, Count: 90}, ClassPermanent},
		{"deviates only at end", Diff{First: 99, Last: 99, Count: 1}, ClassPermanent},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.diff.Classify(window); got != tt.want {
				t.Errorf("Classify() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestErrorClassString(t *testing.T) {
	tests := []struct {
		c    ErrorClass
		want string
	}{
		{ClassNone, "none"},
		{ClassTransient, "transient"},
		{ClassPermanent, "permanent"},
		{ErrorClass(42), "ErrorClass(42)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestDurationAndDensity(t *testing.T) {
	d := Diff{First: 10, Last: 19, Count: 5}
	if got := d.DurationMs(); got != 10 {
		t.Errorf("DurationMs() = %d, want 10", got)
	}
	if got := d.Density(); got != 0.5 {
		t.Errorf("Density() = %v, want 0.5", got)
	}
	none := Diff{First: -1, Last: -1}
	if none.DurationMs() != 0 || none.Density() != 0 {
		t.Error("no-deviation duration/density not zero")
	}
	solid := Diff{First: 3, Last: 3, Count: 1}
	if solid.Density() != 1 {
		t.Errorf("single-sample density = %v, want 1", solid.Density())
	}
}
