package trace

import "fmt"

// ErrorClass categorises how a signal deviation evolved over the
// comparison window — the standard fault-injection taxonomy used when
// interpreting Golden Run Comparisons.
type ErrorClass int

const (
	// ClassNone means the signal never deviated.
	ClassNone ErrorClass = iota + 1
	// ClassTransient means the signal deviated and re-converged to the
	// Golden Run before the end of the window (the error washed out).
	ClassTransient
	// ClassPermanent means the signal was still deviating at the final
	// sample of the window.
	ClassPermanent
)

// String returns the class name.
func (c ErrorClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassTransient:
		return "transient"
	case ClassPermanent:
		return "permanent"
	default:
		return fmt.Sprintf("ErrorClass(%d)", int(c))
	}
}

// Classify categorises the deviation given the length of the compared
// window (in samples).
func (d Diff) Classify(windowLen int) ErrorClass {
	switch {
	case d.Count == 0:
		return ClassNone
	case int(d.Last) >= windowLen-1:
		return ClassPermanent
	default:
		return ClassTransient
	}
}

// DurationMs returns the span from first to last deviating sample,
// inclusive. Zero when the signal never deviated.
func (d Diff) DurationMs() int {
	if d.Count == 0 {
		return 0
	}
	return int(d.Last-d.First) + 1
}

// Density is the fraction of samples within the deviation span that
// actually deviated: 1.0 means a solid deviation, lower values mean
// the signal flickered against the Golden Run.
func (d Diff) Density() float64 {
	span := d.DurationMs()
	if span == 0 {
		return 0
	}
	return float64(d.Count) / float64(span)
}
