package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// The on-disk trace format mirrors PROPANE's workflow of persisting
// Golden Run and injection-run traces for offline comparison:
//
//	magic   [4]byte  "PTRC"
//	version uint16   (1)
//	signals uint32   number of signals
//	samples uint32   samples per signal
//	per signal:
//	    nameLen uint16, name [nameLen]byte (UTF-8)
//	    values  [samples]uint16
//
// All integers are little-endian. Signals are stored in the trace's
// sorted order.

var traceMagic = [4]byte{'P', 'T', 'R', 'C'}

const traceVersion = 1

// maxTraceDim bounds decoded dimensions to keep a corrupted header
// from provoking huge allocations.
const maxTraceDim = 1 << 26

// WriteTo serialises the trace. It returns the number of bytes
// written.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	count := func(written int, err error) error {
		n += int64(written)
		return err
	}
	if err := count(bw.Write(traceMagic[:])); err != nil {
		return n, err
	}
	if err := count(writeUint16(bw, traceVersion)); err != nil {
		return n, err
	}
	if err := count(writeUint32(bw, uint32(len(t.signals)))); err != nil {
		return n, err
	}
	if err := count(writeUint32(bw, uint32(t.Len()))); err != nil {
		return n, err
	}
	for _, sig := range t.signals {
		if len(sig) > 0xFFFF {
			return n, fmt.Errorf("trace: signal name %q too long", sig[:32])
		}
		if err := count(writeUint16(bw, uint16(len(sig)))); err != nil {
			return n, err
		}
		if err := count(bw.Write([]byte(sig))); err != nil {
			return n, err
		}
		for _, v := range t.samples[sig] {
			if err := count(writeUint16(bw, v)); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadTrace deserialises a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != traceMagic {
		return nil, errors.New("trace: not a PTRC trace file")
	}
	version, err := readUint16(br)
	if err != nil {
		return nil, err
	}
	if version != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	nSignals, err := readUint32(br)
	if err != nil {
		return nil, err
	}
	nSamples, err := readUint32(br)
	if err != nil {
		return nil, err
	}
	if nSignals > maxTraceDim || nSamples > maxTraceDim {
		return nil, fmt.Errorf("trace: implausible dimensions %d×%d", nSignals, nSamples)
	}

	tr := &Trace{samples: make(map[string][]uint16, nSignals)}
	prev := ""
	for i := uint32(0); i < nSignals; i++ {
		nameLen, err := readUint16(br)
		if err != nil {
			return nil, err
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, fmt.Errorf("trace: reading signal name: %w", err)
		}
		name := string(nameBuf)
		if i > 0 && name <= prev {
			return nil, fmt.Errorf("trace: signal names out of order (%q after %q)", name, prev)
		}
		if _, dup := tr.samples[name]; dup {
			return nil, fmt.Errorf("trace: duplicate signal %q", name)
		}
		prev = name
		values := make([]uint16, nSamples)
		for j := range values {
			v, err := readUint16(br)
			if err != nil {
				return nil, fmt.Errorf("trace: reading samples of %q: %w", name, err)
			}
			values[j] = v
		}
		tr.signals = append(tr.signals, name)
		tr.samples[name] = values
	}
	return tr, nil
}

// The integer helpers take the concrete buffered writer/reader and
// move bytes one at a time: handing a stack buffer to an io.Writer
// interface makes it escape, and writeUint16 runs once per trace
// sample — on the hot path of every golden-digest pass, that was one
// heap allocation per sample.

func writeUint16(w *bufio.Writer, v uint16) (int, error) {
	if err := w.WriteByte(byte(v)); err != nil {
		return 0, err
	}
	if err := w.WriteByte(byte(v >> 8)); err != nil {
		return 1, err
	}
	return 2, nil
}

func writeUint32(w *bufio.Writer, v uint32) (int, error) {
	for i := 0; i < 4; i++ {
		if err := w.WriteByte(byte(v >> (8 * i))); err != nil {
			return i, err
		}
	}
	return 4, nil
}

func readUint16(r *bufio.Reader) (uint16, error) {
	b0, err := r.ReadByte()
	if err != nil {
		return 0, err
	}
	b1, err := r.ReadByte()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, err
	}
	return uint16(b0) | uint16(b1)<<8, nil
}

func readUint32(r *bufio.Reader) (uint32, error) {
	var v uint32
	for i := 0; i < 4; i++ {
		b, err := r.ReadByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		v |= uint32(b) << (8 * i)
	}
	return v, nil
}
