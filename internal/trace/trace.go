// Package trace implements signal tracing and Golden Run Comparison
// (GRC) as in the paper's Section 6: a Golden Run is a trace of the
// system executing without injections; every injection-run trace is
// compared against it, and any difference indicates an error. Traces
// have millisecond resolution for every logged variable (Section 7.3).
package trace

import (
	"errors"
	"fmt"
	"sort"

	"propane/internal/sim"
)

// Trace is a millisecond-resolution record of a set of signals. Sample
// t of each signal is the value at the end of simulation tick t.
type Trace struct {
	signals []string
	samples map[string][]uint16
}

// NewTrace creates an empty trace for the given signal names.
func NewTrace(signals []string) *Trace {
	names := make([]string, len(signals))
	copy(names, signals)
	sort.Strings(names)
	samples := make(map[string][]uint16, len(names))
	for _, s := range names {
		samples[s] = nil
	}
	return &Trace{signals: names, samples: samples}
}

// Signals returns the traced signal names, sorted.
func (t *Trace) Signals() []string {
	out := make([]string, len(t.signals))
	copy(out, t.signals)
	return out
}

// Len returns the number of samples recorded per signal.
func (t *Trace) Len() int {
	if len(t.signals) == 0 {
		return 0
	}
	return len(t.samples[t.signals[0]])
}

// Append records one sample per signal from the snapshot. Signals
// missing from the snapshot record zero.
func (t *Trace) Append(snapshot map[string]uint16) {
	for _, s := range t.signals {
		t.samples[s] = append(t.samples[s], snapshot[s])
	}
}

// Samples returns the recorded series for a signal.
func (t *Trace) Samples(signal string) ([]uint16, error) {
	s, ok := t.samples[signal]
	if !ok {
		return nil, fmt.Errorf("trace: no signal %q", signal)
	}
	out := make([]uint16, len(s))
	copy(out, s)
	return out, nil
}

// At returns the value of a signal at tick i.
func (t *Trace) At(signal string, i int) (uint16, error) {
	s, ok := t.samples[signal]
	if !ok {
		return 0, fmt.Errorf("trace: no signal %q", signal)
	}
	if i < 0 || i >= len(s) {
		return 0, fmt.Errorf("trace: index %d out of range [0,%d)", i, len(s))
	}
	return s[i], nil
}

// Recorder samples every signal of a bus at the end of each tick.
// Install its Hook as a kernel post-hook.
type Recorder struct {
	bus     *sim.Bus
	handles []*sim.Signal
	series  [][]uint16
	trace   *Trace
}

// NewRecorder creates a recorder over all signals currently registered
// on the bus.
func NewRecorder(bus *sim.Bus) (*Recorder, error) {
	return NewRecorderCap(bus, 0)
}

// NewRecorderCap is NewRecorder with the per-signal sample buffers
// preallocated for the given number of ticks (the run horizon), so a
// run of known length records without growth reallocations.
func NewRecorderCap(bus *sim.Bus, capacity int) (*Recorder, error) {
	names := bus.Names()
	handles := make([]*sim.Signal, len(names))
	series := make([][]uint16, len(names))
	for i, n := range names {
		s, err := bus.Lookup(n)
		if err != nil {
			return nil, err
		}
		handles[i] = s
		if capacity > 0 {
			series[i] = make([]uint16, 0, capacity)
		}
	}
	return &Recorder{bus: bus, handles: handles, series: series, trace: NewTrace(names)}, nil
}

// Hook returns the kernel post-hook performing the sampling.
func (r *Recorder) Hook() sim.Hook {
	return func(sim.Millis) {
		for i, h := range r.handles {
			r.series[i] = append(r.series[i], h.Read())
		}
	}
}

// Trace returns the recorded trace.
func (r *Recorder) Trace() *Trace {
	// Sampling appends to indexed series (no per-tick map writes);
	// sync them into the trace on access.
	for i, sig := range r.trace.signals {
		r.trace.samples[sig] = r.series[i]
	}
	return r.trace
}

// Diff summarises how one signal of a run trace deviates from the
// golden run.
type Diff struct {
	Signal string
	// First and Last are the tick indices (= milliseconds) of the
	// first and last differing sample.
	First, Last sim.Millis
	// Count is the number of differing samples.
	Count int
}

// Differs reports whether any sample differed.
func (d Diff) Differs() bool { return d.Count > 0 }

// Tolerances maps signal names to the absolute deviation (in raw
// 16-bit units) that still counts as "equal" during a Golden Run
// Comparison. The paper compares exactly — valid because its setup
// runs real software in simulated time on simulated hardware, where
// "fluctuations between similar runs in a real environment" cannot
// occur (Section 7.3). On a real test rig continuous signals need a
// tolerance band; this type provides it. Signals without an entry are
// compared exactly.
type Tolerances map[string]uint16

// within reports whether a and b differ by at most the signal's
// tolerance.
func (t Tolerances) within(signal string, a, b uint16) bool {
	if a == b {
		return true
	}
	tol := t[signal]
	if tol == 0 {
		return false
	}
	d := a - b
	if int16(d) < 0 {
		d = -d
	}
	return d <= tol
}

// Compare performs a full Golden Run Comparison between two complete
// traces over the same signal set and length, returning one Diff per
// signal.
func Compare(golden, run *Trace) (map[string]Diff, error) {
	return CompareTol(golden, run, nil)
}

// CompareTol is Compare with per-signal tolerance bands.
func CompareTol(golden, run *Trace, tol Tolerances) (map[string]Diff, error) {
	if golden.Len() != run.Len() {
		return nil, fmt.Errorf("trace: length mismatch: golden %d, run %d", golden.Len(), run.Len())
	}
	gs, rs := golden.Signals(), run.Signals()
	if len(gs) != len(rs) {
		return nil, errors.New("trace: traces cover different signal sets")
	}
	out := make(map[string]Diff, len(gs))
	for i, sig := range gs {
		if rs[i] != sig {
			return nil, errors.New("trace: traces cover different signal sets")
		}
		d := Diff{Signal: sig, First: -1, Last: -1}
		g, r := golden.samples[sig], run.samples[sig]
		for t := range g {
			if !tol.within(sig, g[t], r[t]) {
				if d.Count == 0 {
					d.First = sim.Millis(t)
				}
				d.Last = sim.Millis(t)
				d.Count++
			}
		}
		out[sig] = d
	}
	return out, nil
}

// StreamComparator performs the Golden Run Comparison on the fly
// during an injection run, so the run trace never needs to be stored:
// install its Hook as a kernel post-hook and read the Diffs when the
// run ends. This is what lets a full campaign of tens of thousands of
// runs execute in constant memory per worker.
type StreamComparator struct {
	golden  *Trace
	handles []*sim.Signal
	samples [][]uint16 // golden sample series, one per handle
	diffs   []Diff
	tol     Tolerances
	tick    int
}

// SetTolerances installs per-signal tolerance bands; call before the
// first tick.
func (c *StreamComparator) SetTolerances(tol Tolerances) { c.tol = tol }

// NewStreamComparator creates a comparator of the given bus against a
// golden trace recorded over the same signal set.
func NewStreamComparator(golden *Trace, bus *sim.Bus) (*StreamComparator, error) {
	names := golden.Signals()
	busNames := bus.Names()
	if len(busNames) != len(names) {
		return nil, errors.New("trace: bus and golden trace cover different signal sets")
	}
	handles := make([]*sim.Signal, len(names))
	samples := make([][]uint16, len(names))
	diffs := make([]Diff, len(names))
	for i, n := range names {
		if busNames[i] != n {
			return nil, errors.New("trace: bus and golden trace cover different signal sets")
		}
		s, err := bus.Lookup(n)
		if err != nil {
			return nil, err
		}
		handles[i] = s
		samples[i] = golden.samples[n]
		diffs[i] = Diff{Signal: n, First: -1, Last: -1}
	}
	return &StreamComparator{golden: golden, handles: handles, samples: samples, diffs: diffs}, nil
}

// SeekTo positions the comparator at the given tick, as if the first
// `tick` samples had already been compared and matched. The campaign
// engine uses it when fast-forwarding an injection run from a
// checkpoint: the pre-injection prefix is bit-identical to the golden
// run by construction, so comparison starts at the checkpoint tick.
func (c *StreamComparator) SeekTo(tick int) error {
	if tick < 0 || tick > c.golden.Len() {
		return fmt.Errorf("trace: seek to tick %d outside golden trace [0,%d]", tick, c.golden.Len())
	}
	c.tick = tick
	return nil
}

// Hook returns the kernel post-hook performing the per-tick compare.
// Ticks beyond the golden trace length are ignored.
func (c *StreamComparator) Hook() sim.Hook {
	return func(sim.Millis) {
		if c.tick >= c.golden.Len() {
			return
		}
		for i, h := range c.handles {
			g := c.samples[i][c.tick]
			v := h.Read()
			if v == g {
				continue
			}
			if !c.tol.within(c.diffs[i].Signal, g, v) {
				d := &c.diffs[i]
				if d.Count == 0 {
					d.First = sim.Millis(c.tick)
				}
				d.Last = sim.Millis(c.tick)
				d.Count++
			}
		}
		c.tick++
	}
}

// Diffs returns the per-signal comparison results, keyed by signal.
func (c *StreamComparator) Diffs() map[string]Diff {
	out := make(map[string]Diff, len(c.diffs))
	for _, d := range c.diffs {
		out[d.Signal] = d
	}
	return out
}

// DeviatingDiffs returns only the signals that deviated, keyed by
// signal — nil when the run matched the golden trace everywhere. On
// the campaign hot path the overwhelming majority of runs deviate on
// few or no signals, so the sparse form skips building (and garbage-
// collecting) a full per-signal map per run. Callers must treat a
// missing entry as "no deviation", never as a zero-valued Diff (whose
// First of 0 would read as a deviation at tick 0).
func (c *StreamComparator) DeviatingDiffs() map[string]Diff {
	var out map[string]Diff
	for _, d := range c.diffs {
		if d.Differs() {
			if out == nil {
				out = make(map[string]Diff, 4)
			}
			out[d.Signal] = d
		}
	}
	return out
}

// Diff returns the comparison result for one signal.
func (c *StreamComparator) Diff(signal string) (Diff, error) {
	for _, d := range c.diffs {
		if d.Signal == signal {
			return d, nil
		}
	}
	return Diff{}, fmt.Errorf("trace: comparator does not cover signal %q", signal)
}

// Ticks returns how many ticks have been compared.
func (c *StreamComparator) Ticks() int { return c.tick }
