package trace

import (
	"sync"

	"propane/internal/sim"
)

// Scratch-buffer pooling for the campaign hot path. Every injection
// run needs a StreamComparator (handles, golden-sample and diff
// slices) and every golden-digest pass a Recorder; both allocate
// per-signal slices that are identical in shape from run to run, so
// they are recycled through sync.Pools. Acquire falls back to a fresh
// construction whenever the pooled object's shape does not match the
// requested bus/trace, so callers never observe a difference from
// New*.

var comparatorPool = sync.Pool{New: func() any { return nil }}

// AcquireStreamComparator returns a comparator of the given bus
// against the golden trace, recycling a pooled one when its shape
// matches. Release it with ReleaseStreamComparator once its diffs have
// been copied out and the instance holding its hook is discarded.
func AcquireStreamComparator(golden *Trace, bus *sim.Bus) (*StreamComparator, error) {
	if c, _ := comparatorPool.Get().(*StreamComparator); c != nil && c.rebind(golden, bus) {
		return c, nil
	}
	// Shape mismatch (or empty pool): build fresh; a half-rebound
	// comparator is simply dropped.
	return NewStreamComparator(golden, bus)
}

// ReleaseStreamComparator recycles a comparator obtained from
// AcquireStreamComparator (or NewStreamComparator). The caller must
// not touch it afterwards; any kernel still holding its Hook must be
// discarded with it.
func ReleaseStreamComparator(c *StreamComparator) {
	if c != nil {
		comparatorPool.Put(c)
	}
}

// rebind points a used comparator at a new bus and golden trace,
// resetting all comparison state. It reports false when the pooled
// shape does not match — mixed-topology processes (e.g. the test
// suite) then fall back to a fresh construction.
func (c *StreamComparator) rebind(golden *Trace, bus *sim.Bus) bool {
	names := golden.signals
	busNames := bus.Names()
	if len(busNames) != len(names) || len(c.handles) != len(names) {
		return false
	}
	for i, n := range names {
		if busNames[i] != n {
			return false
		}
		s, err := bus.Lookup(n)
		if err != nil {
			return false
		}
		c.handles[i] = s
		c.samples[i] = golden.samples[n]
		c.diffs[i] = Diff{Signal: n, First: -1, Last: -1}
	}
	c.golden = golden
	c.tol = nil
	c.tick = 0
	return true
}

var recorderPool = sync.Pool{New: func() any { return nil }}

// AcquireRecorder returns a recorder over the bus's signals with
// buffers for `capacity` ticks, recycling a pooled one when its shape
// matches.
//
// HAZARD: Recorder.Trace returns the recorder's one retained *Trace;
// ReleaseRecorder truncates its sample series in place. Only release
// a recorder whose trace is fully consumed and discarded (hashing,
// digesting). A trace that outlives the run — like the campaign's
// golden traces — must come from a recorder that is never released.
func AcquireRecorder(bus *sim.Bus, capacity int) (*Recorder, error) {
	if r, _ := recorderPool.Get().(*Recorder); r != nil && r.rebind(bus, capacity) {
		return r, nil
	}
	return NewRecorderCap(bus, capacity)
}

// ReleaseRecorder recycles a recorder obtained from AcquireRecorder.
// See the aliasing hazard there: the recorder's trace must be dead.
func ReleaseRecorder(r *Recorder) {
	if r != nil {
		recorderPool.Put(r)
	}
}

// rebind points a used recorder at a new bus, truncating (and, when
// the requested capacity grew, reallocating) its sample buffers.
func (r *Recorder) rebind(bus *sim.Bus, capacity int) bool {
	names := bus.Names()
	if len(names) != len(r.handles) || len(names) != len(r.trace.signals) {
		return false
	}
	for i, n := range names {
		if r.trace.signals[i] != n {
			return false
		}
		s, err := bus.Lookup(n)
		if err != nil {
			return false
		}
		r.handles[i] = s
		if cap(r.series[i]) < capacity {
			r.series[i] = make([]uint16, 0, capacity)
		} else {
			r.series[i] = r.series[i][:0]
		}
	}
	r.bus = bus
	return true
}
