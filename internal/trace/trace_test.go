package trace

import (
	"reflect"
	"testing"

	"propane/internal/sim"
)

func TestTraceAppendAndAccess(t *testing.T) {
	tr := NewTrace([]string{"b", "a"})
	if got, want := tr.Signals(), []string{"a", "b"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Signals() = %v, want %v", got, want)
	}
	tr.Append(map[string]uint16{"a": 1, "b": 2})
	tr.Append(map[string]uint16{"a": 3}) // b missing: records 0
	if tr.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", tr.Len())
	}
	sa, err := tr.Samples("a")
	if err != nil || !reflect.DeepEqual(sa, []uint16{1, 3}) {
		t.Errorf("Samples(a) = %v, %v", sa, err)
	}
	sb, err := tr.Samples("b")
	if err != nil || !reflect.DeepEqual(sb, []uint16{2, 0}) {
		t.Errorf("Samples(b) = %v, %v", sb, err)
	}
	if _, err := tr.Samples("z"); err == nil {
		t.Error("Samples(z) succeeded")
	}
	v, err := tr.At("a", 1)
	if err != nil || v != 3 {
		t.Errorf("At(a,1) = %d, %v", v, err)
	}
	if _, err := tr.At("a", 2); err == nil {
		t.Error("At(a,2) succeeded, want range error")
	}
	if _, err := tr.At("nope", 0); err == nil {
		t.Error("At(nope,0) succeeded")
	}
}

func TestEmptyTraceLen(t *testing.T) {
	if got := NewTrace(nil).Len(); got != 0 {
		t.Errorf("empty trace Len() = %d, want 0", got)
	}
}

func TestRecorder(t *testing.T) {
	bus := sim.NewBus()
	a := bus.Register("a")
	b := bus.Register("b")
	rec, err := NewRecorder(bus)
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	hook := rec.Hook()
	a.Write(10)
	b.Write(20)
	hook(0)
	a.Write(11)
	hook(1)
	tr := rec.Trace()
	if tr.Len() != 2 {
		t.Fatalf("recorded %d samples, want 2", tr.Len())
	}
	sa, _ := tr.Samples("a")
	sb, _ := tr.Samples("b")
	if !reflect.DeepEqual(sa, []uint16{10, 11}) || !reflect.DeepEqual(sb, []uint16{20, 20}) {
		t.Errorf("recorded a=%v b=%v", sa, sb)
	}
}

func makeTrace(vals map[string][]uint16) *Trace {
	var names []string
	for n := range vals {
		names = append(names, n)
	}
	tr := NewTrace(names)
	n := 0
	for _, s := range vals {
		n = len(s)
		break
	}
	for i := 0; i < n; i++ {
		snap := make(map[string]uint16)
		for sig, series := range vals {
			snap[sig] = series[i]
		}
		tr.Append(snap)
	}
	return tr
}

func TestCompare(t *testing.T) {
	golden := makeTrace(map[string][]uint16{
		"x": {1, 2, 3, 4, 5},
		"y": {0, 0, 0, 0, 0},
	})
	run := makeTrace(map[string][]uint16{
		"x": {1, 2, 9, 4, 9},
		"y": {0, 0, 0, 0, 0},
	})
	diffs, err := Compare(golden, run)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	dx := diffs["x"]
	if !dx.Differs() || dx.First != 2 || dx.Last != 4 || dx.Count != 2 {
		t.Errorf("diff x = %+v, want first=2 last=4 count=2", dx)
	}
	dy := diffs["y"]
	if dy.Differs() || dy.First != -1 || dy.Last != -1 {
		t.Errorf("diff y = %+v, want no differences", dy)
	}
}

func TestCompareErrors(t *testing.T) {
	a := makeTrace(map[string][]uint16{"x": {1, 2}})
	b := makeTrace(map[string][]uint16{"x": {1}})
	if _, err := Compare(a, b); err == nil {
		t.Error("Compare with length mismatch succeeded")
	}
	c := makeTrace(map[string][]uint16{"y": {1, 2}})
	if _, err := Compare(a, c); err == nil {
		t.Error("Compare with different signals succeeded")
	}
}

func TestStreamComparatorMatchesBatchCompare(t *testing.T) {
	// Drive a bus through a value sequence, recording and
	// stream-comparing simultaneously; the stream diffs must equal the
	// batch Compare result.
	golden := makeTrace(map[string][]uint16{
		"p": {5, 6, 7, 8},
		"q": {1, 1, 1, 1},
	})
	bus := sim.NewBus()
	p := bus.Register("p")
	q := bus.Register("q")
	sc, err := NewStreamComparator(golden, bus)
	if err != nil {
		t.Fatalf("NewStreamComparator: %v", err)
	}
	hook := sc.Hook()
	seqP := []uint16{5, 9, 7, 9}
	seqQ := []uint16{1, 1, 2, 1}
	for i := 0; i < 4; i++ {
		p.Write(seqP[i])
		q.Write(seqQ[i])
		hook(sim.Millis(i))
	}
	dp, err := sc.Diff("p")
	if err != nil {
		t.Fatal(err)
	}
	if dp.First != 1 || dp.Last != 3 || dp.Count != 2 {
		t.Errorf("stream diff p = %+v, want first=1 last=3 count=2", dp)
	}
	dq := sc.Diffs()["q"]
	if dq.First != 2 || dq.Count != 1 {
		t.Errorf("stream diff q = %+v, want first=2 count=1", dq)
	}
	if sc.Ticks() != 4 {
		t.Errorf("Ticks() = %d, want 4", sc.Ticks())
	}
	if _, err := sc.Diff("zz"); err == nil {
		t.Error("Diff(zz) succeeded")
	}
}

func TestStreamComparatorIgnoresOverrun(t *testing.T) {
	golden := makeTrace(map[string][]uint16{"p": {1}})
	bus := sim.NewBus()
	p := bus.Register("p")
	sc, err := NewStreamComparator(golden, bus)
	if err != nil {
		t.Fatal(err)
	}
	hook := sc.Hook()
	p.Write(1)
	hook(0)
	p.Write(99) // beyond golden length: ignored
	hook(1)
	if d := sc.Diffs()["p"]; d.Differs() {
		t.Errorf("overrun tick counted as diff: %+v", d)
	}
	if sc.Ticks() != 1 {
		t.Errorf("Ticks() = %d, want 1", sc.Ticks())
	}
}

func TestStreamComparatorSignalSetMismatch(t *testing.T) {
	golden := makeTrace(map[string][]uint16{"p": {1}})
	bus := sim.NewBus()
	bus.Register("p")
	bus.Register("extra")
	if _, err := NewStreamComparator(golden, bus); err == nil {
		t.Error("NewStreamComparator with extra bus signal succeeded")
	}
	bus2 := sim.NewBus()
	bus2.Register("other")
	if _, err := NewStreamComparator(golden, bus2); err == nil {
		t.Error("NewStreamComparator with wrong signal name succeeded")
	}
}
