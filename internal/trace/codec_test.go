package trace

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	tr := NewTrace([]string{"pulscnt", "SetValue", "TOC2"})
	for i := 0; i < 100; i++ {
		tr.Append(map[string]uint16{
			"pulscnt":  uint16(i),
			"SetValue": uint16(i * 3),
			"TOC2":     uint16(65535 - i),
		})
	}
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !reflect.DeepEqual(got.Signals(), tr.Signals()) {
		t.Errorf("signals = %v, want %v", got.Signals(), tr.Signals())
	}
	if got.Len() != tr.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), tr.Len())
	}
	for _, sig := range tr.Signals() {
		a, _ := tr.Samples(sig)
		b, _ := got.Samples(sig)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("samples of %s differ", sig)
		}
	}
	// A decoded golden run is directly comparable.
	diffs, err := Compare(tr, got)
	if err != nil {
		t.Fatalf("Compare after round-trip: %v", err)
	}
	for sig, d := range diffs {
		if d.Differs() {
			t.Errorf("round-trip introduced deviation in %s: %+v", sig, d)
		}
	}
}

func TestCodecEmptyTrace(t *testing.T) {
	tr := NewTrace(nil)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if got.Len() != 0 || len(got.Signals()) != 0 {
		t.Errorf("empty round-trip: %d signals, %d samples", len(got.Signals()), got.Len())
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short magic", []byte("PT")},
		{"wrong magic", []byte("NOPExxxxxxxxxxxxxxx")},
		{"truncated header", []byte("PTRC\x01")},
		{"bad version", append([]byte("PTRC"), 0x63, 0x00, 0, 0, 0, 0, 0, 0, 0, 0)},
		{"huge dimensions", append([]byte("PTRC"), 0x01, 0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadTrace(bytes.NewReader(tt.data)); err == nil {
				t.Error("ReadTrace accepted garbage")
			}
		})
	}
}

func TestCodecRejectsTruncatedBody(t *testing.T) {
	tr := NewTrace([]string{"a", "b"})
	tr.Append(map[string]uint16{"a": 1, "b": 2})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{len(data) - 1, len(data) / 2, 15} {
		if _, err := ReadTrace(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("ReadTrace accepted trace truncated at %d bytes", cut)
		}
	}
}

// TestCodecRoundTripProperty: arbitrary sample sets survive the codec.
func TestCodecRoundTripProperty(t *testing.T) {
	prop := func(a, b []uint16) bool {
		if len(a) > len(b) {
			a = a[:len(b)]
		} else {
			b = b[:len(a)]
		}
		tr := NewTrace([]string{"s1", "s2"})
		for i := range a {
			tr.Append(map[string]uint16{"s1": a[i], "s2": b[i]})
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		ga, _ := got.Samples("s1")
		gb, _ := got.Samples("s2")
		wa, _ := tr.Samples("s1")
		wb, _ := tr.Samples("s2")
		return reflect.DeepEqual(ga, wa) && reflect.DeepEqual(gb, wb)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
