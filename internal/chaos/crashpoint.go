package chaos

import (
	"sort"
	"sync"
)

// Crashpoints is a registry of labeled coordinator crash sites. The
// code under test calls Hit(label) at each site; a site armed with
// Arm(label, n) fires on its nth hit, at which point Hit returns true
// exactly once and the caller must behave as if the process died
// right there — abort the in-flight request without replying, stop
// serving, and leave whatever was durably written as the only
// surviving state. Firing deterministically at exact protocol sites
// replaces SIGKILL races: the same seed and arming reproduce the same
// crash, every run.
//
// A nil *Crashpoints is inert: Hit returns false, so production code
// carries the checks at zero configuration cost.
type Crashpoints struct {
	mu      sync.Mutex
	armed   map[string]int // label → hits remaining before firing
	hits    map[string]int
	fired   []string
	onCrash func(label string)
}

// NewCrashpoints builds an empty registry. onCrash, when non-nil, is
// invoked synchronously from inside the firing Hit call — it must not
// call back into the crashing component (the test harness typically
// just signals a channel and performs the "kill" from outside).
func NewCrashpoints(onCrash func(label string)) *Crashpoints {
	return &Crashpoints{
		armed:   make(map[string]int),
		hits:    make(map[string]int),
		onCrash: onCrash,
	}
}

// Arm schedules the site to fire on its nth Hit from now (n <= 1
// fires on the next hit). Re-arming a label replaces its schedule.
func (c *Crashpoints) Arm(label string, n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.armed[label] = n
}

// Hit reports one execution of the labeled site, returning true when
// the site fires. Each armed site fires at most once.
func (c *Crashpoints) Hit(label string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	c.hits[label]++
	remaining, armed := c.armed[label]
	if !armed {
		c.mu.Unlock()
		return false
	}
	remaining--
	if remaining > 0 {
		c.armed[label] = remaining
		c.mu.Unlock()
		return false
	}
	delete(c.armed, label)
	c.fired = append(c.fired, label)
	onCrash := c.onCrash
	c.mu.Unlock()
	if onCrash != nil {
		onCrash(label)
	}
	return true
}

// Fired returns the labels that have fired, in firing order.
func (c *Crashpoints) Fired() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.fired))
	copy(out, c.fired)
	return out
}

// Hits returns the per-label hit counters (fired or not) — the
// crash-point coverage a soak run achieved.
func (c *Crashpoints) Hits() map[string]int {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.hits))
	for k, v := range c.hits {
		out[k] = v
	}
	return out
}

// Labels returns the labels seen so far, sorted.
func (c *Crashpoints) Labels() []string {
	hits := c.Hits()
	out := make([]string, 0, len(hits))
	for k := range hits {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
