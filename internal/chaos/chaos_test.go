package chaos

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestParseSpecRoundTrip(t *testing.T) {
	spec, err := ParseSpec("seed=7,rate=0.25,maxdelay=50ms,drop=1,duplicate=3,classes=records+complete")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 7 || spec.Rate != 0.25 || spec.MaxDelay != 50*time.Millisecond {
		t.Errorf("parsed %+v", spec)
	}
	if spec.Weights[FaultDrop] != 1 || spec.Weights[FaultDuplicate] != 3 {
		t.Errorf("weights %v", spec.Weights)
	}
	if !spec.Classes["records"] || !spec.Classes["complete"] || spec.Classes["lease"] {
		t.Errorf("classes %v", spec.Classes)
	}
	reparsed, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", spec.String(), err)
	}
	if !reflect.DeepEqual(spec, reparsed) {
		t.Errorf("String round-trip: %+v != %+v", spec, reparsed)
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, bad := range []string{
		"rate=2", "rate=x", "seed=x", "maxdelay=-1s", "nope=1",
		"classes=lease+bogus", "drop=-1", "seed",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestDeriveSeedIsStableAndDistinct(t *testing.T) {
	a, b := DeriveSeed(7, "w1"), DeriveSeed(7, "w2")
	if a == b {
		t.Errorf("workers w1 and w2 derived the same seed %d", a)
	}
	if a != DeriveSeed(7, "w1") {
		t.Error("DeriveSeed is not deterministic")
	}
}

// chaosServer records every body that actually arrives.
type chaosServer struct {
	mu     sync.Mutex
	bodies [][]byte
}

func (s *chaosServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		s.mu.Lock()
		s.bodies = append(s.bodies, body)
		s.mu.Unlock()
		w.Write([]byte(`{"ok":true}`))
	})
}

func (s *chaosServer) arrivals() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([][]byte(nil), s.bodies...)
}

// drive posts n identical record-class requests through the
// transport, counting client-visible failures.
func drive(t *testing.T, tr *Transport, url string, n int) (failures int) {
	t.Helper()
	client := &http.Client{Transport: tr, Timeout: 10 * time.Second}
	payload := []byte(`{"lease_id":"L1","records":[{"job":1}]}`)
	for i := 0; i < n; i++ {
		resp, err := client.Post(url+"/v1/records", "application/json", bytes.NewReader(payload))
		if err != nil {
			failures++
			continue
		}
		if resp.StatusCode != http.StatusOK {
			failures++
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return failures
}

func TestTransportInjectsEveryFaultKind(t *testing.T) {
	srv := &chaosServer{}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	spec := Spec{Seed: 42, Rate: 0.9, MaxDelay: time.Millisecond}
	tr := NewTransport(spec, nil, t.Logf)
	const n = 400
	failures := drive(t, tr, ts.URL, n)

	counts := tr.Counts()["records"]
	for _, f := range Faults() {
		if counts[f] == 0 {
			t.Errorf("fault %s never injected over %d requests (counts %v)", f, n, counts)
		}
	}
	if failures == 0 {
		t.Error("no request ever failed under rate=0.9 chaos")
	}
	if tr.Injected() == 0 || tr.Summary() == "none" {
		t.Errorf("injected=%d summary=%q", tr.Injected(), tr.Summary())
	}

	// Duplicates really delivered twice; drops really absent: the
	// server must have seen more arrivals than (n - dropped kinds).
	arrived := len(srv.arrivals())
	expected := n + counts[FaultDuplicate] - counts[FaultDrop] - counts[Fault5xx]
	if arrived != expected {
		t.Errorf("server saw %d requests, want %d (n=%d dup=%d drop=%d 5xx=%d)",
			arrived, expected, n, counts[FaultDuplicate], counts[FaultDrop], counts[Fault5xx])
	}

	// Truncated and corrupted bodies must have actually arrived
	// mangled.
	payload := []byte(`{"lease_id":"L1","records":[{"job":1}]}`)
	mangled := 0
	for _, b := range srv.arrivals() {
		if !bytes.Equal(b, payload) {
			mangled++
		}
	}
	if want := counts[FaultTruncate] + counts[FaultCorrupt]; mangled != want {
		t.Errorf("%d mangled bodies arrived, want %d (truncate=%d corrupt=%d)",
			mangled, want, counts[FaultTruncate], counts[FaultCorrupt])
	}
}

func TestTransportSameSeedSameFaults(t *testing.T) {
	run := func() map[string]map[Fault]int {
		srv := &chaosServer{}
		ts := httptest.NewServer(srv.handler())
		defer ts.Close()
		tr := NewTransport(Spec{Seed: 11, Rate: 0.5, MaxDelay: time.Millisecond}, nil, nil)
		drive(t, tr, ts.URL, 100)
		return tr.Counts()
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different fault sequences: %v vs %v", a, b)
	}
}

func TestTransportSparesUntargetedTraffic(t *testing.T) {
	srv := &chaosServer{}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	tr := NewTransport(Spec{Seed: 1, Rate: 1, Classes: map[string]bool{"lease": true}}, nil, nil)
	client := &http.Client{Transport: tr}

	// records is outside the targeted classes; /status is class
	// "other": both must pass untouched even at rate=1.
	for _, path := range []string{"/v1/records", "/status"} {
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(`{}`)))
		if err != nil {
			t.Fatalf("POST %s through chaos transport: %v", path, err)
		}
		resp.Body.Close()
	}
	if tr.Injected() != 0 {
		t.Errorf("untargeted traffic suffered %d faults: %s", tr.Injected(), tr.Summary())
	}

	var fe *FaultError
	_, err := client.Post(ts.URL+"/v1/lease", "application/json", bytes.NewReader([]byte(`{}`)))
	if err == nil {
		// rate=1 guarantees a fault, but the drawn kind may be one
		// that still yields a response (5xx, duplicate, delay...).
		if tr.Injected() == 0 {
			t.Error("targeted lease RPC passed rate=1 chaos unfaulted")
		}
	} else if !errors.As(err, &fe) {
		t.Logf("lease error (wrapped): %v", err) // url.Error wrapping is fine
	}
}

func TestCrashpointsFireOnceAtArmedHit(t *testing.T) {
	var fired []string
	cp := NewCrashpoints(func(label string) { fired = append(fired, label) })
	cp.Arm("mid-batch-append", 3)

	var hits []bool
	for i := 0; i < 5; i++ {
		hits = append(hits, cp.Hit("mid-batch-append"))
	}
	want := []bool{false, false, true, false, false}
	if !reflect.DeepEqual(hits, want) {
		t.Errorf("hit results %v, want %v", hits, want)
	}
	if !reflect.DeepEqual(fired, []string{"mid-batch-append"}) {
		t.Errorf("onCrash saw %v", fired)
	}
	if !reflect.DeepEqual(cp.Fired(), []string{"mid-batch-append"}) {
		t.Errorf("Fired() = %v", cp.Fired())
	}
	if got := cp.Hits()["mid-batch-append"]; got != 5 {
		t.Errorf("hit counter = %d, want 5", got)
	}
	if cp.Hit("pre-lease-grant") {
		t.Error("unarmed site fired")
	}
	if got := cp.Labels(); len(got) != 2 {
		t.Errorf("Labels() = %v", got)
	}
}

func TestNilCrashpointsAreInert(t *testing.T) {
	var cp *Crashpoints
	if cp.Hit("anything") {
		t.Error("nil crashpoints fired")
	}
	if cp.Fired() != nil || cp.Hits() != nil {
		t.Error("nil crashpoints reported state")
	}
}
