package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// FaultError is the transport-level error surfaced for injected drop
// and drop-response faults. It is indistinguishable from a real
// network failure to anything that does not import this package —
// which is the point: the client under test must survive it through
// its ordinary retry path, not through special-casing.
type FaultError struct {
	Fault Fault
	Class string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("chaos: injected %s fault on %s RPC", e.Fault, e.Class)
}

// Classify maps a request path to its RPC class: lease, records,
// heartbeat, complete, or "other" (never faulted).
func Classify(path string) string {
	switch {
	case strings.HasSuffix(path, "/lease"):
		return "lease"
	case strings.HasSuffix(path, "/records"):
		return "records"
	case strings.HasSuffix(path, "/heartbeat"):
		return "heartbeat"
	case strings.HasSuffix(path, "/complete"):
		return "complete"
	}
	return "other"
}

// Transport is a fault-injecting http.RoundTripper. Wrap a worker's
// client transport with NewTransport and every targeted RPC suffers a
// seeded fault with probability Spec.Rate. All methods are safe for
// concurrent use.
type Transport struct {
	spec  Spec
	inner http.RoundTripper
	rng   *rng
	logf  func(format string, args ...any)

	mu     sync.Mutex
	counts map[string]map[Fault]int
	total  int
}

// NewTransport wraps inner (nil selects http.DefaultTransport) with
// fault injection per spec. logf, when non-nil, receives one line per
// injected fault.
func NewTransport(spec Spec, inner http.RoundTripper, logf func(format string, args ...any)) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{
		spec:   spec,
		inner:  inner,
		rng:    newRNG(spec.Seed),
		logf:   logf,
		counts: make(map[string]map[Fault]int),
	}
}

// Counts returns a copy of the per-class injected-fault counters.
func (t *Transport) Counts() map[string]map[Fault]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]map[Fault]int, len(t.counts))
	for class, m := range t.counts {
		cm := make(map[Fault]int, len(m))
		for f, n := range m {
			cm[f] = n
		}
		out[class] = cm
	}
	return out
}

// Injected returns the total number of injected faults.
func (t *Transport) Injected() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Summary renders the counters as one sorted line.
func (t *Transport) Summary() string {
	counts := t.Counts()
	classes := make([]string, 0, len(counts))
	for c := range counts {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	var b strings.Builder
	for _, c := range classes {
		for _, f := range Faults() {
			if n := counts[c][f]; n > 0 {
				fmt.Fprintf(&b, " %s/%s=%d", c, f, n)
			}
		}
	}
	if b.Len() == 0 {
		return "none"
	}
	return strings.TrimSpace(b.String())
}

func (t *Transport) record(class string, f Fault) {
	t.mu.Lock()
	if t.counts[class] == nil {
		t.counts[class] = make(map[Fault]int)
	}
	t.counts[class][f]++
	t.total++
	t.mu.Unlock()
	if t.logf != nil {
		t.logf("chaos: injecting %s fault on %s RPC", f, class)
	}
}

// pick draws the fault a faulted request suffers, honouring the
// spec's weights. Body faults are excluded for bodyless requests.
func (t *Transport) pick(hasBody bool) Fault {
	faults := Faults()
	weights := make([]float64, 0, len(faults))
	total := 0.0
	for _, f := range faults {
		w := t.spec.weight(f)
		if !hasBody && (f == FaultTruncate || f == FaultCorrupt) {
			w = 0
		}
		weights = append(weights, w)
		total += w
	}
	if total <= 0 {
		return FaultDelay
	}
	r := t.rng.float64() * total
	for i, f := range faults {
		r -= weights[i]
		if r < 0 {
			return f
		}
	}
	return faults[len(faults)-1]
}

// RoundTrip injects at most one fault per request. The incoming
// request is never mutated: faulted bodies are rewritten on a clone,
// as an intermediary would re-frame them.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	class := Classify(req.URL.Path)
	if !t.spec.Enabled() || class == "other" {
		return t.inner.RoundTrip(req)
	}
	if len(t.spec.Classes) > 0 && !t.spec.Classes[class] {
		return t.inner.RoundTrip(req)
	}

	// Buffer the body once: every fault except plain delay needs to
	// replay, rewrite or discard it.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("chaos: buffering request body: %w", err)
		}
	}
	send := func(b []byte) (*http.Response, error) {
		r := req.Clone(req.Context())
		r.Body = io.NopCloser(bytes.NewReader(b))
		r.ContentLength = int64(len(b))
		r.GetBody = func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(b)), nil }
		return t.inner.RoundTrip(r)
	}

	if t.rng.float64() >= t.spec.Rate {
		return send(body)
	}
	fault := t.pick(len(body) > 0)
	t.record(class, fault)
	switch fault {
	case FaultDrop:
		return nil, &FaultError{Fault: fault, Class: class}
	case FaultDropResponse:
		resp, err := send(body)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return nil, &FaultError{Fault: fault, Class: class}
	case Fault5xx:
		return synthetic503(req), nil
	case FaultDuplicate:
		if resp, err := send(body); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return send(body)
	case FaultTruncate:
		cut := 1 + t.rng.intn(len(body))
		return send(body[:len(body)-cut])
	case FaultCorrupt:
		mangled := bytes.Clone(body)
		flips := 1 + t.rng.intn(3)
		for i := 0; i < flips; i++ {
			mangled[t.rng.intn(len(mangled))] ^= byte(1 + t.rng.intn(255))
		}
		return send(mangled)
	case FaultDelay:
		d := time.Duration(t.rng.float64() * float64(t.spec.maxDelay()))
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
		return send(body)
	}
	return send(body)
}

// synthetic503 fabricates the reply an overloaded intermediary would
// produce; the origin server never sees the request.
func synthetic503(req *http.Request) *http.Response {
	body := `{"error":"chaos: injected 5xx fault","code":"chaos_5xx"}`
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
