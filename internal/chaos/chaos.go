// Package chaos is the deterministic fault-injection layer for the
// distributed campaign fabric — the same discipline the paper applies
// to its target systems, turned on our own infrastructure. The
// methodology's whole premise is that injected faults expose
// propagation paths that normal operation masks; a coordinator/worker
// protocol is no different, so the fabric is exercised under seeded
// drop/delay/duplicate/truncate/corrupt/5xx faults per RPC class
// (Transport, an http.RoundTripper wrapping the worker's client) and
// labeled coordinator-side crash points (Crashpoints) that fire at
// exact protocol sites instead of relying on SIGKILL races.
//
// Everything is seeded: a chaos run is reproducible by its Spec, and
// the acceptance oracle is bit-identity — a campaign executed under
// sustained fault rates must assemble the exact journal a single-node
// run produces.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Fault names a single injected fault kind.
type Fault string

// The fault taxonomy. Each faulted request suffers exactly one:
//
//   - FaultDrop: the request never reaches the server (connection
//     lost before send).
//   - FaultDropResponse: the server processes the request but the
//     reply is lost — the client must retry a delivery that already
//     happened, the canonical duplicate-delivery producer.
//   - Fault5xx: a synthetic 503 as an intermediary would emit it; the
//     server never sees the request.
//   - FaultDuplicate: the request is delivered twice back-to-back;
//     the client sees only the second reply.
//   - FaultTruncate: the request body is cut short in flight (the
//     framing is repaired, so only integrity checks can tell).
//   - FaultCorrupt: seeded byte flips inside the request body.
//   - FaultDelay: the request is held for a seeded duration, then
//     delivered intact — reordering and lease-expiry pressure.
const (
	FaultDrop         Fault = "drop"
	FaultDropResponse Fault = "drop-response"
	Fault5xx          Fault = "5xx"
	FaultDuplicate    Fault = "duplicate"
	FaultTruncate     Fault = "truncate"
	FaultCorrupt      Fault = "corrupt"
	FaultDelay        Fault = "delay"
)

// Faults lists the taxonomy in its canonical (and selection) order.
func Faults() []Fault {
	return []Fault{FaultDrop, FaultDropResponse, Fault5xx, FaultDuplicate, FaultTruncate, FaultCorrupt, FaultDelay}
}

// Spec parameterises a chaos run. The zero value injects nothing.
type Spec struct {
	// Seed makes the fault sequence reproducible.
	Seed int64
	// Rate is the probability that any one request in a targeted RPC
	// class is faulted, in [0, 1].
	Rate float64
	// Weights biases which fault a faulted request suffers. Missing
	// (or all-zero) weights select every fault equally; a zero weight
	// with any positive weight present disables that fault.
	Weights map[Fault]float64
	// MaxDelay bounds FaultDelay holds. <= 0 selects 25ms.
	MaxDelay time.Duration
	// Classes restricts injection to these RPC classes (lease,
	// records, heartbeat, complete). Empty targets all four. The
	// "other" class (status, metrics) is never faulted.
	Classes map[string]bool
}

// Enabled reports whether the spec injects anything at all.
func (s Spec) Enabled() bool { return s.Rate > 0 }

func (s Spec) maxDelay() time.Duration {
	if s.MaxDelay > 0 {
		return s.MaxDelay
	}
	return 25 * time.Millisecond
}

// weight returns f's selection weight under the spec.
func (s Spec) weight(f Fault) float64 {
	if len(s.Weights) == 0 {
		return 1
	}
	total := 0.0
	for _, w := range s.Weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return 1
	}
	return s.Weights[f]
}

// String renders the spec in ParseSpec's syntax.
func (s Spec) String() string {
	parts := []string{fmt.Sprintf("seed=%d", s.Seed), fmt.Sprintf("rate=%g", s.Rate)}
	if s.MaxDelay > 0 {
		parts = append(parts, fmt.Sprintf("maxdelay=%s", s.MaxDelay))
	}
	faults := make([]string, 0, len(s.Weights))
	for f := range s.Weights {
		faults = append(faults, string(f))
	}
	sort.Strings(faults)
	for _, f := range faults {
		parts = append(parts, fmt.Sprintf("%s=%g", f, s.Weights[Fault(f)]))
	}
	if len(s.Classes) > 0 {
		classes := make([]string, 0, len(s.Classes))
		for c := range s.Classes {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		parts = append(parts, "classes="+strings.Join(classes, "+"))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the -chaos flag syntax: comma-separated key=value
// pairs.
//
//	seed=7,rate=0.2                       // 20% of RPCs faulted, all kinds
//	seed=7,rate=0.3,drop=1,duplicate=3    // only drops and duplicates, 1:3
//	seed=7,rate=0.2,maxdelay=50ms         // bound injected delays
//	seed=7,rate=0.5,classes=records+complete
//
// Keys: seed, rate, maxdelay, classes, and one weight per fault kind
// (drop, drop-response, 5xx, duplicate, truncate, corrupt, delay).
func ParseSpec(s string) (Spec, error) {
	spec := Spec{}
	known := make(map[Fault]bool)
	for _, f := range Faults() {
		known[f] = true
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Spec{}, fmt.Errorf("chaos: %q is not key=value", part)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("chaos: bad seed %q: %v", val, err)
			}
			spec.Seed = n
		case "rate":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || r < 0 || r > 1 {
				return Spec{}, fmt.Errorf("chaos: bad rate %q (want a probability in [0,1])", val)
			}
			spec.Rate = r
		case "maxdelay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Spec{}, fmt.Errorf("chaos: bad maxdelay %q: %v", val, err)
			}
			spec.MaxDelay = d
		case "classes":
			spec.Classes = make(map[string]bool)
			for _, c := range strings.Split(val, "+") {
				switch c {
				case "lease", "records", "heartbeat", "complete":
					spec.Classes[c] = true
				default:
					return Spec{}, fmt.Errorf("chaos: unknown RPC class %q (want lease, records, heartbeat or complete)", c)
				}
			}
		default:
			if !known[Fault(key)] {
				return Spec{}, fmt.Errorf("chaos: unknown key %q", key)
			}
			w, err := strconv.ParseFloat(val, 64)
			if err != nil || w < 0 {
				return Spec{}, fmt.Errorf("chaos: bad weight %q for %s", val, key)
			}
			if spec.Weights == nil {
				spec.Weights = make(map[Fault]float64)
			}
			spec.Weights[Fault(key)] = w
		}
	}
	return spec, nil
}

// DeriveSeed folds a worker identity into a spec seed so every fleet
// member draws an independent — but still reproducible — fault
// sequence from one campaign-level seed.
func DeriveSeed(seed int64, name string) int64 {
	// FNV-1a over the name, xor-folded into the seed.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return seed ^ int64(h&0x7fffffffffffffff)
}

// rng is a lock-guarded seeded source shared by a Transport's
// concurrent requests.
type rng struct {
	mu sync.Mutex
	r  *rand.Rand
}

func newRNG(seed int64) *rng { return &rng{r: rand.New(rand.NewSource(seed))} }

func (g *rng) float64() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Float64()
}

func (g *rng) intn(n int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Intn(n)
}
