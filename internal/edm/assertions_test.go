package edm

import (
	"testing"

	"propane/internal/arrestor"
	"propane/internal/campaign"
)

// studyDetectors builds the executable assertions evaluated by the
// assertion-study tests: a monotonicity check on the pulse counter, a
// range check on the checkpoint index, and a rate check on the set
// point.
func studyDetectors() []Detector {
	return []Detector{
		&MonotonicAssertion{Sig: arrestor.SigPulscnt},
		&RangeAssertion{Sig: arrestor.SigI, Lo: 0, Hi: 6},
		&DeltaAssertion{Sig: arrestor.SigSetValue, MaxDelta: 25000},
	}
}

func TestAssertionStudy(t *testing.T) {
	results, err := AssertionStudy(evalConfig(), studyDetectors)
	if err != nil {
		t.Fatalf("AssertionStudy: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	byName := map[string]AssertionResult{}
	for _, r := range results {
		byName[r.Signal] = r
		// Sanity: detected never exceeds failures; coverage in [0,1].
		if r.Detected > r.SystemFailures {
			t.Errorf("%s: detected %d > failures %d", r.Detector, r.Detected, r.SystemFailures)
		}
		if c := r.Coverage(); c < 0 || c > 1 {
			t.Errorf("%s: coverage %v out of range", r.Detector, c)
		}
		if r.Detected > 0 && r.MeanLeadMs < 0 {
			t.Errorf("%s: negative lead time %v", r.Detector, r.MeanLeadMs)
		}
	}

	// None of these assertions may alarm on correct behaviour.
	for sig, r := range byName {
		if r.GoldenAlarms != 0 {
			t.Errorf("assertion on %s alarmed %d times on golden runs", sig, r.GoldenAlarms)
		}
	}

	// The pulse-counter monotonicity check catches downward PACNT/
	// pulscnt corruptions with a positive lead time.
	if r := byName[arrestor.SigPulscnt]; r.SystemFailures > 0 && r.Detected == 0 {
		t.Errorf("monotonic assertion on pulscnt detected nothing over %d failures", r.SystemFailures)
	}
	// A measured (and instructive) negative result: the range check on
	// i detects nothing, because CALC clamps a corrupted checkpoint
	// index back into range within the same tick — the millisecond-
	// sampled assertion never observes the transient. Location and
	// sampling matter as much as the check itself (the OB3 theme).
	if r := byName[arrestor.SigI]; r.Detected != 0 {
		t.Logf("note: range assertion on i now detects %d (was structurally blind)", r.Detected)
	}

	// At least one assertion must achieve non-trivial coverage; the
	// study is vacuous otherwise.
	best := 0.0
	for _, r := range results {
		if c := r.Coverage(); c > best {
			best = c
		}
	}
	if best == 0 {
		t.Error("no assertion detected any system failure")
	}
}

func TestAssertionStudyValidation(t *testing.T) {
	if _, err := AssertionStudy(evalConfig(), nil); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := AssertionStudy(evalConfig(), func() []Detector { return nil }); err == nil {
		t.Error("empty factory accepted")
	}
	cfg := evalConfig()
	cfg.Observer = func(campaign.RunRecord) {}
	if _, err := AssertionStudy(cfg, studyDetectors); err == nil {
		t.Error("pre-set observer accepted")
	}
	bad := evalConfig()
	bad.TestCases = nil
	if _, err := AssertionStudy(bad, studyDetectors); err == nil {
		t.Error("invalid campaign accepted")
	}
	// A detector on an unknown signal fails at attach time.
	if _, err := AssertionStudy(evalConfig(), func() []Detector {
		return []Detector{&RangeAssertion{Sig: "no-such-signal", Lo: 0, Hi: 1}}
	}); err == nil {
		t.Error("detector on unknown signal accepted")
	}
}
