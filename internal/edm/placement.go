package edm

import (
	"errors"
	"fmt"
	"sort"

	"propane/internal/campaign"
)

// Placement is a candidate EDM location: a monitored signal and the
// mechanism's detection probability for errors that pass the signal
// (the paper's "detection probability"; deterministic in our harness
// via a per-run hash).
type Placement struct {
	Signal string
	// Efficiency in [0,1] is the probability that the mechanism
	// detects an error present on the monitored signal.
	Efficiency float64
}

// String renders the placement compactly.
func (p Placement) String() string {
	return fmt.Sprintf("EDM(%s, eff=%.2f)", p.Signal, p.Efficiency)
}

// Coverage is the outcome of evaluating one placement over a
// campaign.
type Coverage struct {
	Placement Placement
	// ErrorRuns is the number of runs in which any signal deviated
	// from the Golden Run.
	ErrorRuns int
	// SystemFailures is the number of runs in which a system output
	// deviated (the dangerous errors).
	SystemFailures int
	// Exposed counts system-failure runs in which the monitored signal
	// deviated — the runs where the mechanism had any chance at all.
	Exposed int
	// Detected counts system-failure runs the mechanism detected.
	Detected int
}

// FailureCoverage is the fraction of system-failure runs detected —
// the figure of merit of OB3.
func (c Coverage) FailureCoverage() float64 {
	if c.SystemFailures == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.SystemFailures)
}

// ExposureRate is the fraction of system-failure runs in which the
// monitored signal carried the error at all; it bounds the coverage
// regardless of the mechanism's efficiency.
func (c Coverage) ExposureRate() float64 {
	if c.SystemFailures == 0 {
		return 0
	}
	return float64(c.Exposed) / float64(c.SystemFailures)
}

// ERMPotential is, for one signal, the fraction of system-failure
// runs in which the signal deviated — the upper bound on the
// system-level benefit of a perfect recovery mechanism at that signal
// (OB5: SetValue and OutValue are part of all propagation paths, so a
// successful recovery there protects the system output entirely).
type ERMPotential struct {
	Signal    string
	Failures  int
	Deviated  int
	Potential float64
}

// Report is the outcome of a placement evaluation.
type Report struct {
	Coverages []Coverage
	// ERM holds the recovery potential for every signal, sorted by
	// decreasing potential.
	ERM []ERMPotential
	// CampaignResult is the underlying permeability campaign result.
	CampaignResult *campaign.Result
}

// Evaluate runs a fault-injection campaign and evaluates the given
// EDM placements against every injection run. Detection of a run is
// deterministic: the mechanism sees the run iff the monitored signal
// deviated from the Golden Run, and detects it iff the run's coverage
// hash falls below the mechanism's efficiency.
func Evaluate(cfg campaign.Config, placements []Placement) (*Report, error) {
	if len(placements) == 0 {
		return nil, errors.New("edm: no placements to evaluate")
	}
	for _, p := range placements {
		if p.Efficiency < 0 || p.Efficiency > 1 {
			return nil, fmt.Errorf("edm: efficiency %v of %s out of [0,1]", p.Efficiency, p.Signal)
		}
	}
	if cfg.Observer != nil {
		return nil, errors.New("edm: campaign config already has an observer")
	}

	coverages := make([]Coverage, len(placements))
	for i, p := range placements {
		coverages[i] = Coverage{Placement: p}
	}
	deviated := make(map[string]int)
	failures := 0

	cfg.Observer = func(rec campaign.RunRecord) {
		if !rec.Fired {
			return
		}
		anyDiff := false
		for _, d := range rec.Diffs {
			if d.Differs() {
				anyDiff = true
				break
			}
		}
		if rec.SystemFailure {
			failures++
			// A recovery or detection location only helps if the error
			// passes it no later than the system output fails; signals
			// that deviate only as a downstream consequence of the
			// failure (through the environment loop) do not count.
			for sig, d := range rec.Diffs {
				if d.Differs() && d.First <= rec.FailureAt {
					deviated[sig]++
				}
			}
		}
		runKey := fmt.Sprintf("%s#%d", rec.Injection, rec.CaseIndex)
		for i := range coverages {
			c := &coverages[i]
			if anyDiff {
				c.ErrorRuns++
			}
			if !rec.SystemFailure {
				continue
			}
			c.SystemFailures++
			d, ok := rec.Diffs[c.Placement.Signal]
			if !ok || !d.Differs() || d.First > rec.FailureAt {
				continue
			}
			c.Exposed++
			if coverageHash(runKey+"|"+c.Placement.Signal) < c.Placement.Efficiency {
				c.Detected++
			}
		}
	}

	res, err := campaign.Run(cfg)
	if err != nil {
		return nil, err
	}

	var erm []ERMPotential
	for sig, n := range deviated {
		p := ERMPotential{Signal: sig, Failures: failures, Deviated: n}
		if failures > 0 {
			p.Potential = float64(n) / float64(failures)
		}
		erm = append(erm, p)
	}
	sort.Slice(erm, func(a, b int) bool {
		if erm[a].Potential != erm[b].Potential {
			return erm[a].Potential > erm[b].Potential
		}
		return erm[a].Signal < erm[b].Signal
	})

	return &Report{Coverages: coverages, ERM: erm, CampaignResult: res}, nil
}
