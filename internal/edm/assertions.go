package edm

import (
	"errors"
	"fmt"
	"sort"

	"propane/internal/campaign"
)

// AssertionResult summarises how one concrete executable assertion
// behaved over a fault-injection campaign: how often it alarmed on
// system-failure runs (true positives), how often on benign error runs,
// whether it ever alarmed on the Golden Runs themselves (false
// positives — a detector that trips on correct behaviour is unusable),
// and its mean detection latency relative to the system failure.
type AssertionResult struct {
	Detector string
	Signal   string
	// GoldenAlarms counts alarms raised during the golden (no
	// injection) runs: design-time false positives.
	GoldenAlarms int
	// SystemFailures is the number of injection runs whose system
	// output deviated.
	SystemFailures int
	// Detected counts system-failure runs where the assertion alarmed
	// no later than the system output failed.
	Detected int
	// LateAlarms counts system-failure runs where the assertion
	// alarmed only after the output had already failed.
	LateAlarms int
	// BenignAlarms counts alarms on runs that deviated somewhere but
	// never corrupted a system output.
	BenignAlarms int
	// MeanLeadMs is the mean lead time (failure time − alarm time)
	// over detected runs: how much earlier than the failure the
	// assertion fired.
	MeanLeadMs float64

	leadSum int64
}

// Coverage is Detected / SystemFailures.
func (r AssertionResult) Coverage() float64 {
	if r.SystemFailures == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.SystemFailures)
}

// AssertionStudy runs a fault-injection campaign with real executable
// assertions (edm.Detector implementations) monitoring their signals
// inside every run — golden and injected — and reports each
// assertion's measured behaviour. This is the experimental counterpart
// of the paper's reference [7] (assertion-based EDM efficiency): where
// Evaluate models an abstract detection probability, AssertionStudy
// executes the concrete checks.
//
// The factory is invoked once per run to produce fresh detector
// instances (assertions are stateful); it must return the same
// detectors in the same order every time.
func AssertionStudy(cfg campaign.Config, factory func() []Detector) ([]AssertionResult, error) {
	if factory == nil {
		return nil, errors.New("edm: nil detector factory")
	}
	if cfg.Observer != nil {
		return nil, errors.New("edm: campaign config already has an observer")
	}
	probe := factory()
	if len(probe) == 0 {
		return nil, errors.New("edm: factory returned no detectors")
	}
	results := make([]AssertionResult, len(probe))
	for i, d := range probe {
		results[i] = AssertionResult{Detector: d.Name(), Signal: d.Signal()}
	}

	// Golden-run false positives: run each test case once with the
	// monitors attached and no injection.
	for _, tc := range cfg.TestCases {
		inst, err := cfg.NewInstance(tc, nil)
		if err != nil {
			return nil, err
		}
		monitors, err := attach(factory(), inst)
		if err != nil {
			return nil, err
		}
		inst.Run(cfg.HorizonMs)
		for i, mon := range monitors {
			if _, alarmed := mon.Alarmed(); alarmed {
				results[i].GoldenAlarms++
			}
		}
	}

	// Injection runs: the campaign drives the simulations; our
	// per-run instrumentation hook attaches fresh monitors, and the
	// observer correlates their alarms with the run outcome via the
	// attachment handed back on the serial path.
	cfg.Instrument = func(inst campaign.Instance, _ int) (any, error) {
		return attach(factory(), inst)
	}
	cfg.Observer = func(rec campaign.RunRecord) {
		monitors, ok := rec.Attachment.([]*Monitor)
		if !ok || !rec.Fired {
			return
		}
		anyDiff := rec.SystemFailure
		if !anyDiff {
			for _, d := range rec.Diffs {
				if d.Differs() {
					anyDiff = true
					break
				}
			}
		}
		for i, mon := range monitors {
			at, alarmed := mon.Alarmed()
			r := &results[i]
			switch {
			case rec.SystemFailure:
				r.SystemFailures++
				if alarmed && at <= rec.FailureAt {
					r.Detected++
					r.leadSum += int64(rec.FailureAt - at)
				} else if alarmed {
					r.LateAlarms++
				}
			case anyDiff && alarmed:
				r.BenignAlarms++
			}
		}
	}

	if _, err := campaign.Run(cfg); err != nil {
		return nil, err
	}
	for i := range results {
		if results[i].Detected > 0 {
			results[i].MeanLeadMs = float64(results[i].leadSum) / float64(results[i].Detected)
		}
	}
	sort.Slice(results, func(a, b int) bool {
		if results[a].Coverage() != results[b].Coverage() {
			return results[a].Coverage() > results[b].Coverage()
		}
		return results[a].Detector < results[b].Detector
	})
	return results, nil
}

// attach wires fresh detectors onto an instance's bus and kernel.
func attach(dets []Detector, inst campaign.Instance) ([]*Monitor, error) {
	monitors := make([]*Monitor, len(dets))
	for i, d := range dets {
		mon, err := NewMonitor(d, inst.Bus())
		if err != nil {
			return nil, fmt.Errorf("edm: attaching %s: %w", d.Name(), err)
		}
		inst.Kernel().AddPostHook(mon.Hook())
		monitors[i] = mon
	}
	return monitors, nil
}
