// Package edm implements error detection mechanisms (EDMs) and error
// recovery mechanisms (ERMs) in the sense of the paper's Section 5,
// plus the placement-evaluation experiment behind observation OB3:
// a detection mechanism should be judged not only by its detection
// probability but by how often errors actually pass the location it
// monitors — "it should be preferred to put a detection mechanism
// with a slightly lower detection probability at a location where
// errors very likely pass by during propagation rather than placing a
// mechanism with a very high detection probability at a location
// which seldom is exposed to propagating errors."
package edm

import (
	"errors"
	"fmt"
	"hash/fnv"

	"propane/internal/sim"
)

// Detector is an executable assertion monitoring one signal. Feed it
// every sample of the signal; Check reports an alarm.
type Detector interface {
	// Signal names the monitored signal.
	Signal() string
	// Name identifies the detector for reports.
	Name() string
	// Check consumes one sample and reports whether the assertion
	// fires on it.
	Check(v uint16, now sim.Millis) bool
	// Reset clears internal state for a fresh run.
	Reset()
}

// RangeAssertion fires when the signal leaves [Lo, Hi] — the simplest
// executable assertion (cf. the paper's [11, 16] references).
type RangeAssertion struct {
	Sig    string
	Lo, Hi uint16
}

var _ Detector = (*RangeAssertion)(nil)

// Signal implements Detector.
func (r *RangeAssertion) Signal() string { return r.Sig }

// Name implements Detector.
func (r *RangeAssertion) Name() string {
	return fmt.Sprintf("range(%s in [%d,%d])", r.Sig, r.Lo, r.Hi)
}

// Check implements Detector.
func (r *RangeAssertion) Check(v uint16, _ sim.Millis) bool {
	return v < r.Lo || v > r.Hi
}

// Reset implements Detector.
func (r *RangeAssertion) Reset() {}

// DeltaAssertion fires when the signal moves more than MaxDelta
// between consecutive samples — a rate-of-change assertion suited to
// physical quantities like pressure.
type DeltaAssertion struct {
	Sig      string
	MaxDelta uint16

	primed bool
	prev   uint16
}

var _ Detector = (*DeltaAssertion)(nil)

// Signal implements Detector.
func (d *DeltaAssertion) Signal() string { return d.Sig }

// Name implements Detector.
func (d *DeltaAssertion) Name() string {
	return fmt.Sprintf("delta(%s <= %d)", d.Sig, d.MaxDelta)
}

// Check implements Detector.
func (d *DeltaAssertion) Check(v uint16, _ sim.Millis) bool {
	if !d.primed {
		d.primed = true
		d.prev = v
		return false
	}
	diff := v - d.prev
	if int16(diff) < 0 {
		diff = -diff
	}
	d.prev = v
	return diff > d.MaxDelta
}

// Reset implements Detector.
func (d *DeltaAssertion) Reset() {
	d.primed = false
	d.prev = 0
}

// MonotonicAssertion fires when the signal decreases — suited to
// monotone counters such as pulscnt or the checkpoint index i.
type MonotonicAssertion struct {
	Sig string

	primed bool
	prev   uint16
}

var _ Detector = (*MonotonicAssertion)(nil)

// Signal implements Detector.
func (m *MonotonicAssertion) Signal() string { return m.Sig }

// Name implements Detector.
func (m *MonotonicAssertion) Name() string {
	return fmt.Sprintf("monotonic(%s)", m.Sig)
}

// Check implements Detector.
func (m *MonotonicAssertion) Check(v uint16, _ sim.Millis) bool {
	if !m.primed {
		m.primed = true
		m.prev = v
		return false
	}
	decreased := int16(v-m.prev) < 0
	m.prev = v
	return decreased
}

// Reset implements Detector.
func (m *MonotonicAssertion) Reset() {
	m.primed = false
	m.prev = 0
}

// Monitor attaches a detector to a signal on a bus and samples it
// every tick via a kernel post-hook, recording the first alarm.
type Monitor struct {
	det     Detector
	sig     *sim.Signal
	alarmed bool
	alarmAt sim.Millis
}

// NewMonitor wires a detector to the named signal of the bus.
func NewMonitor(det Detector, bus *sim.Bus) (*Monitor, error) {
	if det == nil {
		return nil, errors.New("edm: nil detector")
	}
	sig, err := bus.Lookup(det.Signal())
	if err != nil {
		return nil, fmt.Errorf("edm: monitor: %w", err)
	}
	det.Reset()
	return &Monitor{det: det, sig: sig}, nil
}

// Hook returns the kernel post-hook performing the sampling.
func (m *Monitor) Hook() sim.Hook {
	return func(now sim.Millis) {
		if m.det.Check(m.sig.Read(), now) && !m.alarmed {
			m.alarmed = true
			m.alarmAt = now
		}
	}
}

// Alarmed reports whether the detector fired and when it first did.
func (m *Monitor) Alarmed() (sim.Millis, bool) {
	return m.alarmAt, m.alarmed
}

// Detector returns the wrapped detector.
func (m *Monitor) Detector() Detector { return m.det }

// coverageHash derives a deterministic pseudo-random value in [0,1)
// from a run identity, used to model a detector's detection
// probability without non-determinism.
func coverageHash(key string) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return float64(h.Sum64()%1e6) / 1e6
}
