package edm

import (
	"errors"
	"fmt"
	"sort"

	"propane/internal/campaign"
	"propane/internal/trace"
)

// SynthesisOptions tunes the assertion synthesiser.
type SynthesisOptions struct {
	// RangeMarginFrac widens the observed [min, max] envelope of each
	// signal by this fraction of its span on each side (default 0.1).
	RangeMarginFrac float64
	// DeltaMarginFactor multiplies the observed maximum per-sample
	// change (default 1.5).
	DeltaMarginFactor float64
	// Signals restricts synthesis to the listed signals; empty means
	// every signal of the topology.
	Signals []string
}

// SynthesizeDetectors derives executable assertions from the Golden
// Runs of a campaign's workload grid: for every signal it observes the
// value envelope and the maximum per-sample rate of change across all
// test cases, then emits a RangeAssertion and a DeltaAssertion widened
// by the configured margins. By construction the synthesised
// assertions never alarm on any golden run of the same workload —
// detection capability is bought entirely from behaviour outside the
// observed envelope. (Deriving assertions from observed signal
// behaviour is the approach the PROPANE authors develop in their
// follow-on work on executable assertions.)
func SynthesizeDetectors(cfg campaign.Config, opts SynthesisOptions) ([]Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.RangeMarginFrac == 0 {
		opts.RangeMarginFrac = 0.1
	}
	if opts.RangeMarginFrac < 0 {
		return nil, errors.New("edm: negative range margin")
	}
	if opts.DeltaMarginFactor == 0 {
		opts.DeltaMarginFactor = 1.5
	}
	if opts.DeltaMarginFactor < 1 {
		return nil, errors.New("edm: delta margin factor must be >= 1")
	}

	type envelope struct {
		lo, hi   uint16
		maxDelta uint16
		seen     bool
	}
	env := map[string]*envelope{}

	for _, tc := range cfg.TestCases {
		inst, err := cfg.NewInstance(tc, nil)
		if err != nil {
			return nil, err
		}
		rec, err := trace.NewRecorder(inst.Bus())
		if err != nil {
			return nil, err
		}
		inst.Kernel().AddPostHook(rec.Hook())
		inst.Run(cfg.HorizonMs)
		tr := rec.Trace()
		for _, sig := range tr.Signals() {
			samples, err := tr.Samples(sig)
			if err != nil {
				return nil, err
			}
			e, ok := env[sig]
			if !ok {
				e = &envelope{lo: ^uint16(0)}
				env[sig] = e
			}
			for i, v := range samples {
				e.seen = true
				if v < e.lo {
					e.lo = v
				}
				if v > e.hi {
					e.hi = v
				}
				if i > 0 {
					d := v - samples[i-1]
					if int16(d) < 0 {
						d = -d
					}
					if d > e.maxDelta {
						e.maxDelta = d
					}
				}
			}
		}
	}

	wanted := map[string]bool{}
	for _, s := range opts.Signals {
		wanted[s] = true
	}
	var names []string
	for sig, e := range env {
		if !e.seen {
			continue
		}
		if len(wanted) > 0 && !wanted[sig] {
			continue
		}
		names = append(names, sig)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("edm: no signals to synthesise assertions for")
	}
	sort.Strings(names)

	var dets []Detector
	for _, sig := range names {
		e := env[sig]
		span := uint32(e.hi - e.lo)
		margin := uint16(float64(span) * opts.RangeMarginFrac)
		lo, hi := e.lo, e.hi
		if uint32(lo) >= uint32(margin) {
			lo -= margin
		} else {
			lo = 0
		}
		if uint32(hi)+uint32(margin) <= 0xFFFF {
			hi += margin
		} else {
			hi = 0xFFFF
		}
		dets = append(dets, &RangeAssertion{Sig: sig, Lo: lo, Hi: hi})

		maxDelta := uint16(float64(e.maxDelta) * opts.DeltaMarginFactor)
		if maxDelta < e.maxDelta { // overflow clamp
			maxDelta = 0xFFFF
		}
		dets = append(dets, &DeltaAssertion{Sig: sig, MaxDelta: maxDelta})
	}
	return dets, nil
}
