package edm

import (
	"strings"
	"testing"

	"propane/internal/arrestor"
	"propane/internal/campaign"
)

func optimizeCandidates() []Candidate {
	return []Candidate{
		{Signal: arrestor.SigSetValue, Efficiency: 0.8, Cost: 1},
		{Signal: arrestor.SigOutValue, Efficiency: 0.8, Cost: 1},
		{Signal: arrestor.SigInValue, Efficiency: 1.0, Cost: 1},
		{Signal: arrestor.SigPulscnt, Efficiency: 0.8, Cost: 1},
	}
}

func TestOptimizeGreedyCoverage(t *testing.T) {
	picks, err := Optimize(evalConfig(), optimizeCandidates(), 3)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if len(picks) == 0 {
		t.Fatal("no picks")
	}
	// Coverage is monotone non-decreasing and gains are positive.
	prev := 0.0
	for i, p := range picks {
		if p.Gain <= 0 {
			t.Errorf("pick %d has gain %d", i, p.Gain)
		}
		if p.CumulativeCoverage < prev {
			t.Errorf("coverage decreased at pick %d: %v -> %v", i, prev, p.CumulativeCoverage)
		}
		prev = p.CumulativeCoverage
	}
	if prev <= 0 || prev > 1 {
		t.Errorf("final coverage %v out of (0,1]", prev)
	}
	// The first pick is the single best mechanism: with OutValue on
	// every propagation path (OB5), it must be chosen ahead of the
	// low-exposure InValue despite InValue's perfect efficiency.
	if got := picks[0].Candidate.Signal; got != arrestor.SigOutValue {
		t.Errorf("first pick = %s, want OutValue (highest exposure)", got)
	}
	for _, p := range picks {
		if p.Candidate.Signal == arrestor.SigInValue && p == picks[0] {
			t.Error("InValue picked first despite low exposure")
		}
	}
	// Rendering.
	out := FormatSelections(picks)
	if !strings.Contains(out, "joint coverage") {
		t.Errorf("FormatSelections output malformed: %q", out)
	}
}

func TestOptimizeRespectsCost(t *testing.T) {
	// Make the best-coverage signal prohibitively expensive: the
	// optimiser must then prefer the cheaper alternative first.
	candidates := []Candidate{
		{Signal: arrestor.SigOutValue, Efficiency: 0.8, Cost: 100},
		{Signal: arrestor.SigSetValue, Efficiency: 0.8, Cost: 1},
	}
	picks, err := Optimize(evalConfig(), candidates, 2)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if len(picks) == 0 {
		t.Fatal("no picks")
	}
	if picks[0].Candidate.Signal != arrestor.SigSetValue {
		t.Errorf("first pick = %s, want the cheap SetValue mechanism", picks[0].Candidate.Signal)
	}
}

func TestOptimizeStopsWhenNoGain(t *testing.T) {
	// A single candidate cannot fill k=4 picks; the optimiser stops.
	picks, err := Optimize(evalConfig(), []Candidate{
		{Signal: arrestor.SigOutValue, Efficiency: 0.5, Cost: 1},
	}, 4)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if len(picks) != 1 {
		t.Errorf("picks = %d, want 1 (no further gain available)", len(picks))
	}
}

func TestOptimizeValidation(t *testing.T) {
	cfg := evalConfig()
	if _, err := Optimize(cfg, nil, 1); err == nil {
		t.Error("no candidates accepted")
	}
	if _, err := Optimize(cfg, optimizeCandidates(), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Optimize(cfg, []Candidate{{Signal: "x", Efficiency: 2, Cost: 1}}, 1); err == nil {
		t.Error("bad efficiency accepted")
	}
	if _, err := Optimize(cfg, []Candidate{{Signal: "x", Efficiency: 0.5, Cost: 0}}, 1); err == nil {
		t.Error("zero cost accepted")
	}
	withObs := evalConfig()
	withObs.Observer = func(campaign.RunRecord) {}
	if _, err := Optimize(withObs, optimizeCandidates(), 1); err == nil {
		t.Error("pre-set observer accepted")
	}
	bad := evalConfig()
	bad.Times = nil
	if _, err := Optimize(bad, optimizeCandidates(), 1); err == nil {
		t.Error("invalid campaign accepted")
	}
}
