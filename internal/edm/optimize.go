package edm

import (
	"errors"
	"fmt"

	"propane/internal/campaign"
)

// Candidate is one possible EDM location with the mechanism's
// detection probability, offered to the placement optimiser.
type Candidate struct {
	Signal string
	// Efficiency in [0,1], as in Placement.
	Efficiency float64
	// Cost is the relative cost of deploying this mechanism (CPU,
	// memory, engineering effort). Must be positive; the optimiser
	// maximises coverage gained per unit cost.
	Cost float64
}

// Selection is the optimiser's outcome: the chosen candidates in
// selection order with the cumulative coverage after each pick.
type Selection struct {
	Candidate Candidate
	// Gain is the number of additional system-failure runs this pick
	// detects beyond the previously selected mechanisms.
	Gain int
	// CumulativeCoverage is the joint failure coverage after this
	// pick.
	CumulativeCoverage float64
}

// Optimize chooses up to k EDM locations from the candidates by
// running a fault-injection campaign and greedily maximising the
// *joint* coverage of system failures per unit cost — the
// experimental-data-driven combination selection of the paper's
// related work [18]: subsets that minimise overlap between mechanisms
// give the best cost-performance ratio. A candidate detects a given
// failure run when the monitored signal deviated no later than the
// system output and the run's deterministic coverage hash falls below
// the candidate's efficiency (the same model as Evaluate).
//
// The returned selections are in pick order; picking stops early when
// no remaining candidate adds coverage.
func Optimize(cfg campaign.Config, candidates []Candidate, k int) ([]Selection, error) {
	if len(candidates) == 0 {
		return nil, errors.New("edm: no candidates")
	}
	if k < 1 {
		return nil, errors.New("edm: k must be >= 1")
	}
	for _, c := range candidates {
		if c.Efficiency < 0 || c.Efficiency > 1 {
			return nil, fmt.Errorf("edm: efficiency %v of %s out of [0,1]", c.Efficiency, c.Signal)
		}
		if c.Cost <= 0 {
			return nil, fmt.Errorf("edm: cost %v of %s must be positive", c.Cost, c.Signal)
		}
	}
	if cfg.Observer != nil {
		return nil, errors.New("edm: campaign config already has an observer")
	}

	// detects[i] holds the failure-run ids candidate i would detect.
	detects := make([][]int, len(candidates))
	failures := 0
	cfg.Observer = func(rec campaign.RunRecord) {
		if !rec.Fired || !rec.SystemFailure {
			return
		}
		runID := failures
		failures++
		runKey := fmt.Sprintf("%s#%d", rec.Injection, rec.CaseIndex)
		for i, c := range candidates {
			d, ok := rec.Diffs[c.Signal]
			if !ok || !d.Differs() || d.First > rec.FailureAt {
				continue
			}
			if coverageHash(runKey+"|"+c.Signal) < c.Efficiency {
				detects[i] = append(detects[i], runID)
			}
		}
	}
	if _, err := campaign.Run(cfg); err != nil {
		return nil, err
	}
	if failures == 0 {
		return nil, errors.New("edm: campaign produced no system failures; nothing to optimise")
	}

	covered := make([]bool, failures)
	used := make([]bool, len(candidates))
	var picks []Selection
	coveredCount := 0
	for len(picks) < k {
		best, bestGain := -1, 0
		bestRatio := 0.0
		for i, c := range candidates {
			if used[i] {
				continue
			}
			gain := 0
			for _, run := range detects[i] {
				if !covered[run] {
					gain++
				}
			}
			ratio := float64(gain) / c.Cost
			if gain > 0 && (best == -1 || ratio > bestRatio ||
				(ratio == bestRatio && c.Signal < candidates[best].Signal)) {
				best, bestGain, bestRatio = i, gain, ratio
			}
		}
		if best == -1 {
			break // no remaining candidate adds coverage
		}
		used[best] = true
		for _, run := range detects[best] {
			if !covered[run] {
				covered[run] = true
				coveredCount++
			}
		}
		picks = append(picks, Selection{
			Candidate:          candidates[best],
			Gain:               bestGain,
			CumulativeCoverage: float64(coveredCount) / float64(failures),
		})
	}
	return picks, nil
}

// FormatSelections renders the optimiser outcome one pick per line.
func FormatSelections(picks []Selection) string {
	out := ""
	for i, p := range picks {
		out += fmt.Sprintf("%d. EDM(%s, eff=%.2f, cost=%.1f)  +%d runs  joint coverage %.1f%%\n",
			i+1, p.Candidate.Signal, p.Candidate.Efficiency, p.Candidate.Cost,
			p.Gain, 100*p.CumulativeCoverage)
	}
	return out
}
