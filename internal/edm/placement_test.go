package edm

import (
	"testing"

	"propane/internal/arrestor"
	"propane/internal/campaign"
	"propane/internal/physics"
	"propane/internal/sim"
)

func evalConfig() campaign.Config {
	cases, err := physics.Grid(1, 2, 11000, 11000, 50, 70)
	if err != nil {
		panic(err)
	}
	return campaign.Config{
		Arrestor:       arrestor.DefaultConfig(),
		TestCases:      cases,
		Times:          []sim.Millis{1500, 3500},
		Bits:           []uint{2, 14},
		HorizonMs:      6000,
		DirectWindowMs: 500,
	}
}

// TestOB3Tradeoff reproduces the paper's observation OB3: a perfect
// detector on the low-exposure InValue signal covers far fewer system
// failures than a clearly less efficient detector on the high-exposure
// SetValue signal.
func TestOB3Tradeoff(t *testing.T) {
	report, err := Evaluate(evalConfig(), []Placement{
		{Signal: arrestor.SigInValue, Efficiency: 1.0},
		{Signal: arrestor.SigSetValue, Efficiency: 0.7},
		{Signal: arrestor.SigOutValue, Efficiency: 0.7},
	})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	bys := map[string]Coverage{}
	for _, c := range report.Coverages {
		bys[c.Placement.Signal] = c
	}
	inv, setv := bys[arrestor.SigInValue], bys[arrestor.SigSetValue]
	if setv.SystemFailures == 0 {
		t.Fatal("campaign produced no system failures; evaluation vacuous")
	}
	if setv.FailureCoverage() <= inv.FailureCoverage() {
		t.Errorf("OB3 violated: weak EDM on SetValue covers %.3f, perfect EDM on InValue covers %.3f",
			setv.FailureCoverage(), inv.FailureCoverage())
	}
	// The bound structure: coverage <= exposure rate, and detections
	// never exceed exposures.
	for sig, c := range bys {
		if c.Detected > c.Exposed {
			t.Errorf("%s: detected %d > exposed %d", sig, c.Detected, c.Exposed)
		}
		if c.FailureCoverage() > c.ExposureRate()+1e-9 {
			t.Errorf("%s: coverage %.3f exceeds exposure rate %.3f", sig, c.FailureCoverage(), c.ExposureRate())
		}
	}
}

// TestOB5ERMPotential: SetValue and OutValue lie on every propagation
// path to TOC2, so their recovery potential must be (near) total and
// top-ranked.
func TestOB5ERMPotential(t *testing.T) {
	report, err := Evaluate(evalConfig(), []Placement{
		{Signal: arrestor.SigSetValue, Efficiency: 1.0},
	})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(report.ERM) == 0 {
		t.Fatal("no ERM potentials computed")
	}
	pot := map[string]float64{}
	for _, e := range report.ERM {
		pot[e.Signal] = e.Potential
	}
	// TOC2 itself deviates in every system-failure run by definition.
	if pot[arrestor.SigTOC2] != 1.0 {
		t.Errorf("TOC2 potential = %v, want 1.0", pot[arrestor.SigTOC2])
	}
	if pot[arrestor.SigOutValue] < 0.9 {
		t.Errorf("OutValue potential = %v, want >= 0.9 (on every path)", pot[arrestor.SigOutValue])
	}
	// InValue is seldom on the propagation path (OB3).
	if pot[arrestor.SigInValue] >= pot[arrestor.SigOutValue] {
		t.Errorf("InValue potential %v >= OutValue potential %v", pot[arrestor.SigInValue], pot[arrestor.SigOutValue])
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(evalConfig(), nil); err == nil {
		t.Error("Evaluate with no placements succeeded")
	}
	if _, err := Evaluate(evalConfig(), []Placement{{Signal: "x", Efficiency: 1.5}}); err == nil {
		t.Error("Evaluate with efficiency > 1 succeeded")
	}
	cfg := evalConfig()
	cfg.Observer = func(campaign.RunRecord) {}
	if _, err := Evaluate(cfg, []Placement{{Signal: arrestor.SigSetValue, Efficiency: 1}}); err == nil {
		t.Error("Evaluate with pre-set observer succeeded")
	}
	bad := evalConfig()
	bad.TestCases = nil
	if _, err := Evaluate(bad, []Placement{{Signal: arrestor.SigSetValue, Efficiency: 1}}); err == nil {
		t.Error("Evaluate with invalid campaign succeeded")
	}
}
