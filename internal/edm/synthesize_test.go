package edm

import (
	"testing"

	"propane/internal/arrestor"
)

func TestSynthesizeDetectors(t *testing.T) {
	cfg := evalConfig()
	dets, err := SynthesizeDetectors(cfg, SynthesisOptions{
		Signals: []string{arrestor.SigSetValue, arrestor.SigPulscnt, arrestor.SigI},
	})
	if err != nil {
		t.Fatalf("SynthesizeDetectors: %v", err)
	}
	// Two assertions (range + delta) per requested signal.
	if len(dets) != 6 {
		t.Fatalf("detectors = %d, want 6", len(dets))
	}
	seen := map[string]int{}
	for _, d := range dets {
		seen[d.Signal()]++
	}
	for _, sig := range []string{arrestor.SigSetValue, arrestor.SigPulscnt, arrestor.SigI} {
		if seen[sig] != 2 {
			t.Errorf("signal %s has %d detectors, want 2", sig, seen[sig])
		}
	}
}

// TestSynthesizedAssertionsAreGoldenClean is the synthesiser's core
// guarantee: the derived assertions never alarm on the golden runs of
// the same workload, yet still detect injected corruption.
func TestSynthesizedAssertionsAreGoldenClean(t *testing.T) {
	cfg := evalConfig()
	dets, err := SynthesizeDetectors(cfg, SynthesisOptions{
		Signals: []string{arrestor.SigSetValue, arrestor.SigPulscnt, arrestor.SigI, arrestor.SigOutValue},
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := AssertionStudy(cfg, func() []Detector {
		fresh, err := SynthesizeDetectors(cfg, SynthesisOptions{
			Signals: []string{arrestor.SigSetValue, arrestor.SigPulscnt, arrestor.SigI, arrestor.SigOutValue},
		})
		if err != nil {
			panic(err)
		}
		return fresh
	})
	if err != nil {
		t.Fatalf("AssertionStudy: %v", err)
	}
	if len(results) != len(dets) {
		t.Fatalf("results = %d, want %d", len(results), len(dets))
	}
	detected := 0
	for _, r := range results {
		if r.GoldenAlarms != 0 {
			t.Errorf("synthesised %s alarmed %d times on golden runs", r.Detector, r.GoldenAlarms)
		}
		detected += r.Detected
	}
	if detected == 0 {
		t.Error("no synthesised assertion detected any system failure")
	}
}

func TestSynthesizeValidation(t *testing.T) {
	bad := evalConfig()
	bad.TestCases = nil
	if _, err := SynthesizeDetectors(bad, SynthesisOptions{}); err == nil {
		t.Error("invalid campaign accepted")
	}
	if _, err := SynthesizeDetectors(evalConfig(), SynthesisOptions{RangeMarginFrac: -1}); err == nil {
		t.Error("negative margin accepted")
	}
	if _, err := SynthesizeDetectors(evalConfig(), SynthesisOptions{DeltaMarginFactor: 0.5}); err == nil {
		t.Error("shrinking delta factor accepted")
	}
	if _, err := SynthesizeDetectors(evalConfig(), SynthesisOptions{Signals: []string{"ghost"}}); err == nil {
		t.Error("unknown-only signal list accepted")
	}
}
