package edm

import (
	"strings"
	"testing"

	"propane/internal/arrestor"
	"propane/internal/campaign"
)

// TestOB5RecoveryStudy measures what recovery mechanisms avert at the
// system level: the OB5 ordering (OutValue on every path averts the
// most; SetValue next; the low-exposure InValue little) must emerge.
func TestOB5RecoveryStudy(t *testing.T) {
	results, err := RecoveryStudy(evalConfig(), []string{
		arrestor.SigOutValue, arrestor.SigSetValue, arrestor.SigInValue, arrestor.SigPulscnt,
	})
	if err != nil {
		t.Fatalf("RecoveryStudy: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	byS := map[string]RecoveryResult{}
	for _, r := range results {
		byS[r.Signal] = r
		if r.BaselineFailures == 0 {
			t.Fatal("baseline produced no failures; study vacuous")
		}
		if r.FailuresWithERM > r.BaselineFailures {
			t.Errorf("ERM(%s) *increased* failures: %d -> %d", r.Signal, r.BaselineFailures, r.FailuresWithERM)
		}
		if r.Reduction() < 0 || r.Reduction() > 1 {
			t.Errorf("ERM(%s) reduction %v out of range", r.Signal, r.Reduction())
		}
	}
	out, set, inv := byS[arrestor.SigOutValue], byS[arrestor.SigSetValue], byS[arrestor.SigInValue]
	if out.Averted() <= set.Averted() {
		t.Errorf("OB5 violated: ERM(OutValue) averts %d <= ERM(SetValue) %d", out.Averted(), set.Averted())
	}
	if set.Averted() <= inv.Averted() {
		t.Errorf("OB5 violated: ERM(SetValue) averts %d <= ERM(InValue) %d", set.Averted(), inv.Averted())
	}
	// pulscnt is re-produced every millisecond by DIST_S, so a
	// recovery mechanism there is redundant — a measured version of
	// the "probability of actually being used" argument of OB3.
	if p := byS[arrestor.SigPulscnt]; p.Averted() > p.BaselineFailures/10 {
		t.Errorf("ERM(pulscnt) averted %d of %d; expected near zero (signal refreshed every tick)",
			p.Averted(), p.BaselineFailures)
	}
	// Rendering.
	if s := FormatRecovery(results); !strings.Contains(s, "averted") {
		t.Errorf("FormatRecovery malformed: %q", s)
	}
}

func TestRecoveryStudyValidation(t *testing.T) {
	if _, err := RecoveryStudy(evalConfig(), nil); err == nil {
		t.Error("no signals accepted")
	}
	cfg := evalConfig()
	cfg.Observer = func(campaign.RunRecord) {}
	if _, err := RecoveryStudy(cfg, []string{arrestor.SigOutValue}); err == nil {
		t.Error("pre-set observer accepted")
	}
	bad := evalConfig()
	bad.TestCases = nil
	if _, err := RecoveryStudy(bad, []string{arrestor.SigOutValue}); err == nil {
		t.Error("invalid campaign accepted")
	}
	if _, err := RecoveryStudy(evalConfig(), []string{"no-such-signal"}); err == nil {
		t.Error("unknown signal accepted")
	}
	// Zero-baseline edge case for the accessor.
	zero := RecoveryResult{}
	if zero.Reduction() != 0 {
		t.Errorf("zero-baseline reduction = %v", zero.Reduction())
	}
}
