package edm

import (
	"errors"
	"fmt"

	"propane/internal/campaign"
	"propane/internal/sim"
	"propane/internal/trace"
)

// RecoveryResult reports the system-level effect of deploying an error
// recovery mechanism on one signal.
type RecoveryResult struct {
	Signal string
	// BaselineFailures is the number of system-failure runs without
	// any recovery mechanism.
	BaselineFailures int
	// FailuresWithERM is the number of system-failure runs with the
	// recovery mechanism active on the signal.
	FailuresWithERM int
}

// Averted is the number of failures the mechanism prevented.
func (r RecoveryResult) Averted() int { return r.BaselineFailures - r.FailuresWithERM }

// Reduction is the relative failure reduction, 0..1.
func (r RecoveryResult) Reduction() float64 {
	if r.BaselineFailures == 0 {
		return 0
	}
	return float64(r.Averted()) / float64(r.BaselineFailures)
}

// RecoveryStudy measures, for each candidate signal, how many system
// failures an error recovery mechanism at that signal would avert:
// the experimental counterpart of observation OB5 ("if errors can be
// eliminated here, the system output will not be affected, given total
// success for the recovery mechanisms").
//
// The mechanism modelled is an idealised ERM with one-tick latency: at
// the end of every tick it compares the monitored signal against the
// matching Golden Run and restores the golden value on deviation, so
// downstream modules never consume the corrupted value on subsequent
// ticks. One full campaign runs per candidate signal plus one
// baseline.
func RecoveryStudy(cfg campaign.Config, signals []string) ([]RecoveryResult, error) {
	if len(signals) == 0 {
		return nil, errors.New("edm: no signals to study")
	}
	if cfg.Observer != nil || cfg.Instrument != nil {
		return nil, errors.New("edm: campaign config already instrumented")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	baseline, err := countFailures(cfg, "")
	if err != nil {
		return nil, err
	}
	results := make([]RecoveryResult, 0, len(signals))
	for _, sig := range signals {
		failures, err := countFailures(cfg, sig)
		if err != nil {
			return nil, fmt.Errorf("edm: recovery study on %s: %w", sig, err)
		}
		results = append(results, RecoveryResult{
			Signal:           sig,
			BaselineFailures: baseline,
			FailuresWithERM:  failures,
		})
	}
	return results, nil
}

// countFailures runs one campaign, optionally with the idealised ERM
// active on recoverSignal, and returns the number of system-failure
// runs.
func countFailures(cfg campaign.Config, recoverSignal string) (int, error) {
	run := cfg
	failures := 0
	run.Observer = func(rec campaign.RunRecord) {
		if rec.Fired && rec.SystemFailure {
			failures++
		}
	}
	if recoverSignal != "" {
		goldens, err := goldenSamples(cfg, recoverSignal)
		if err != nil {
			return 0, err
		}
		run.Instrument = func(inst campaign.Instance, caseIdx int) (any, error) {
			sig, err := inst.Bus().Lookup(recoverSignal)
			if err != nil {
				return nil, err
			}
			golden := goldens[caseIdx]
			tick := 0
			inst.Kernel().AddPostHook(func(sim.Millis) {
				if tick < len(golden) && sig.Read() != golden[tick] {
					sig.Write(golden[tick])
				}
				tick++
			})
			return nil, nil
		}
	}
	if _, err := campaign.Run(run); err != nil {
		return 0, err
	}
	return failures, nil
}

// goldenSamples records the golden series of one signal for every test
// case of the campaign.
func goldenSamples(cfg campaign.Config, signal string) ([][]uint16, error) {
	out := make([][]uint16, len(cfg.TestCases))
	for i, tc := range cfg.TestCases {
		inst, err := cfg.NewInstance(tc, nil)
		if err != nil {
			return nil, err
		}
		rec, err := trace.NewRecorder(inst.Bus())
		if err != nil {
			return nil, err
		}
		inst.Kernel().AddPostHook(rec.Hook())
		inst.Run(cfg.HorizonMs)
		samples, err := rec.Trace().Samples(signal)
		if err != nil {
			return nil, err
		}
		out[i] = samples
	}
	return out, nil
}

// FormatRecovery renders recovery-study results one signal per line.
func FormatRecovery(results []RecoveryResult) string {
	out := ""
	for _, r := range results {
		out += fmt.Sprintf("ERM(%s): failures %d -> %d  (averted %d, -%.1f%%)\n",
			r.Signal, r.BaselineFailures, r.FailuresWithERM, r.Averted(), 100*r.Reduction())
	}
	return out
}
