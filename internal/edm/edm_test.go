package edm

import (
	"strings"
	"testing"

	"propane/internal/sim"
)

func TestRangeAssertion(t *testing.T) {
	r := &RangeAssertion{Sig: "SetValue", Lo: 100, Hi: 200}
	tests := []struct {
		v    uint16
		want bool
	}{
		{100, false}, {150, false}, {200, false},
		{99, true}, {201, true}, {0, true}, {65535, true},
	}
	for _, tt := range tests {
		if got := r.Check(tt.v, 0); got != tt.want {
			t.Errorf("Check(%d) = %v, want %v", tt.v, got, tt.want)
		}
	}
	if r.Signal() != "SetValue" {
		t.Errorf("Signal() = %q", r.Signal())
	}
	if !strings.Contains(r.Name(), "range") {
		t.Errorf("Name() = %q", r.Name())
	}
	r.Reset() // no-op, must not panic
}

func TestDeltaAssertion(t *testing.T) {
	d := &DeltaAssertion{Sig: "InValue", MaxDelta: 10}
	if d.Check(1000, 0) {
		t.Error("first sample alarmed")
	}
	if d.Check(1009, 1) {
		t.Error("small move alarmed")
	}
	if !d.Check(1030, 2) {
		t.Error("jump of 21 not alarmed")
	}
	// Downward jumps count too.
	if !d.Check(1000, 3) {
		t.Error("downward jump not alarmed")
	}
	d.Reset()
	if d.Check(5000, 4) {
		t.Error("alarmed right after Reset")
	}
}

func TestMonotonicAssertion(t *testing.T) {
	m := &MonotonicAssertion{Sig: "pulscnt"}
	if m.Check(5, 0) {
		t.Error("first sample alarmed")
	}
	if m.Check(5, 1) || m.Check(6, 2) {
		t.Error("non-decreasing samples alarmed")
	}
	if !m.Check(4, 3) {
		t.Error("decrease not alarmed")
	}
	// Wrap-around of a counter is treated as an increase.
	m.Reset()
	m.Check(0xFFFE, 4)
	if m.Check(2, 5) {
		t.Error("16-bit wrap treated as decrease")
	}
}

func TestMonitor(t *testing.T) {
	bus := sim.NewBus()
	sig := bus.Register("SetValue")
	mon, err := NewMonitor(&RangeAssertion{Sig: "SetValue", Lo: 0, Hi: 100}, bus)
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	hook := mon.Hook()
	sig.Write(50)
	hook(0)
	if _, alarmed := mon.Alarmed(); alarmed {
		t.Fatal("alarmed on in-range value")
	}
	sig.Write(150)
	hook(1)
	at, alarmed := mon.Alarmed()
	if !alarmed || at != 1 {
		t.Fatalf("Alarmed() = %d,%v; want 1,true", at, alarmed)
	}
	// First alarm is latched.
	sig.Write(200)
	hook(2)
	if at, _ := mon.Alarmed(); at != 1 {
		t.Errorf("alarm time moved to %d, want latched 1", at)
	}
	if mon.Detector().Signal() != "SetValue" {
		t.Error("Detector() accessor broken")
	}
}

func TestMonitorErrors(t *testing.T) {
	bus := sim.NewBus()
	if _, err := NewMonitor(nil, bus); err == nil {
		t.Error("NewMonitor(nil) succeeded")
	}
	if _, err := NewMonitor(&RangeAssertion{Sig: "absent"}, bus); err == nil {
		t.Error("NewMonitor on unknown signal succeeded")
	}
}

func TestCoverageHashDeterministicAndSpread(t *testing.T) {
	if coverageHash("a") != coverageHash("a") {
		t.Error("coverageHash not deterministic")
	}
	// Rough uniformity: over many keys, mean should be near 0.5.
	sum := 0.0
	const n = 2000
	for i := 0; i < n; i++ {
		sum += coverageHash(strings.Repeat("k", i%37) + string(rune(i)))
	}
	mean := sum / n
	if mean < 0.4 || mean > 0.6 {
		t.Errorf("coverageHash mean = %v, want near 0.5", mean)
	}
}

func TestCoverageAccessors(t *testing.T) {
	c := Coverage{
		Placement:      Placement{Signal: "SetValue", Efficiency: 0.7},
		SystemFailures: 10,
		Exposed:        8,
		Detected:       6,
	}
	if got := c.FailureCoverage(); got != 0.6 {
		t.Errorf("FailureCoverage() = %v, want 0.6", got)
	}
	if got := c.ExposureRate(); got != 0.8 {
		t.Errorf("ExposureRate() = %v, want 0.8", got)
	}
	empty := Coverage{}
	if empty.FailureCoverage() != 0 || empty.ExposureRate() != 0 {
		t.Error("zero-failure coverage not 0")
	}
	if got := c.Placement.String(); got != "EDM(SetValue, eff=0.70)" {
		t.Errorf("Placement.String() = %q", got)
	}
}
