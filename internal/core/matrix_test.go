package core

import (
	"math"
	"testing"
	"testing/quick"

	"propane/internal/model"
)

// exampleMatrix returns the Fig. 2 example system with hand-assigned
// permeability values used throughout the core tests:
//
//	A(1,1)=0.8
//	B(1,1)=0.5 B(1,2)=0.6 B(2,1)=0.9 B(2,2)=0.3
//	C(1,1)=0.7  D(1,1)=0.4
//	E(1,1)=0.9 E(2,1)=0.5 E(3,1)=0.2
func exampleMatrix(t *testing.T) *Matrix {
	t.Helper()
	m := NewMatrix(model.PaperExampleSystem())
	assign := []struct {
		mod     string
		in, out int
		v       float64
	}{
		{"A", 1, 1, 0.8},
		{"B", 1, 1, 0.5}, {"B", 1, 2, 0.6}, {"B", 2, 1, 0.9}, {"B", 2, 2, 0.3},
		{"C", 1, 1, 0.7},
		{"D", 1, 1, 0.4},
		{"E", 1, 1, 0.9}, {"E", 2, 1, 0.5}, {"E", 3, 1, 0.2},
	}
	for _, a := range assign {
		if err := m.Set(a.mod, a.in, a.out, a.v); err != nil {
			t.Fatalf("Set(%s,%d,%d,%v): %v", a.mod, a.in, a.out, a.v, err)
		}
	}
	return m
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewMatrixZeroFilled(t *testing.T) {
	m := NewMatrix(model.PaperExampleSystem())
	if got, want := m.Len(), 10; got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
	for _, pv := range m.Pairs() {
		if pv.Value != 0 {
			t.Errorf("fresh matrix pair %v = %v, want 0", pv.Pair, pv.Value)
		}
	}
}

func TestMatrixSetValidation(t *testing.T) {
	m := NewMatrix(model.PaperExampleSystem())
	tests := []struct {
		name    string
		mod     string
		in, out int
		v       float64
		wantErr bool
	}{
		{"valid", "B", 1, 2, 0.5, false},
		{"boundary zero", "B", 1, 1, 0, false},
		{"boundary one", "B", 2, 2, 1, false},
		{"negative", "B", 1, 1, -0.1, true},
		{"above one", "B", 1, 1, 1.1, true},
		{"unknown module", "Z", 1, 1, 0.5, true},
		{"unknown input", "A", 2, 1, 0.5, true},
		{"unknown output", "A", 1, 2, 0.5, true},
		{"zero index", "A", 0, 1, 0.5, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := m.Set(tt.mod, tt.in, tt.out, tt.v)
			if (err != nil) != tt.wantErr {
				t.Errorf("Set() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestMatrixSetBySignal(t *testing.T) {
	m := NewMatrix(model.PaperExampleSystem())
	if err := m.SetBySignal("B", "a1", "b2", 0.42); err != nil {
		t.Fatalf("SetBySignal: %v", err)
	}
	v, err := m.Value("B", 1, 2)
	if err != nil || !almostEqual(v, 0.42) {
		t.Errorf("Value(B,1,2) = %v, %v; want 0.42", v, err)
	}
	if err := m.SetBySignal("B", "nope", "b2", 0.1); err == nil {
		t.Error("SetBySignal with unknown input signal succeeded")
	}
	if err := m.SetBySignal("B", "a1", "nope", 0.1); err == nil {
		t.Error("SetBySignal with unknown output signal succeeded")
	}
	if err := m.SetBySignal("Z", "a1", "b2", 0.1); err == nil {
		t.Error("SetBySignal with unknown module succeeded")
	}
}

func TestMatrixValueErrors(t *testing.T) {
	m := exampleMatrix(t)
	if _, err := m.Value("A", 1, 9); err == nil {
		t.Error("Value on nonexistent pair succeeded")
	}
	v, err := m.Value("B", 2, 1)
	if err != nil || !almostEqual(v, 0.9) {
		t.Errorf("Value(B,2,1) = %v, %v; want 0.9", v, err)
	}
}

func TestRelativePermeability(t *testing.T) {
	m := exampleMatrix(t)
	tests := []struct {
		module          string
		wantRel, wantNW float64
	}{
		{"A", 0.8, 0.8},
		{"B", 2.3 / 4, 2.3},
		{"C", 0.7, 0.7},
		{"D", 0.4, 0.4},
		{"E", 1.6 / 3, 1.6},
	}
	for _, tt := range tests {
		t.Run(tt.module, func(t *testing.T) {
			rel, err := m.RelativePermeability(tt.module)
			if err != nil {
				t.Fatalf("RelativePermeability: %v", err)
			}
			if !almostEqual(rel, tt.wantRel) {
				t.Errorf("P^%s = %v, want %v", tt.module, rel, tt.wantRel)
			}
			nw, err := m.NonWeightedRelativePermeability(tt.module)
			if err != nil {
				t.Fatalf("NonWeightedRelativePermeability: %v", err)
			}
			if !almostEqual(nw, tt.wantNW) {
				t.Errorf("P̄^%s = %v, want %v", tt.module, nw, tt.wantNW)
			}
		})
	}
	if _, err := m.RelativePermeability("Z"); err == nil {
		t.Error("RelativePermeability(Z) succeeded, want error")
	}
	if _, err := m.NonWeightedRelativePermeability("Z"); err == nil {
		t.Error("NonWeightedRelativePermeability(Z) succeeded, want error")
	}
}

func TestPairsOrderingAndSignals(t *testing.T) {
	m := exampleMatrix(t)
	pairs := m.Pairs()
	if len(pairs) != 10 {
		t.Fatalf("len(Pairs()) = %d, want 10", len(pairs))
	}
	// First pair: module A (insertion order), input 1, output 1.
	first := pairs[0]
	if first.Pair != (Pair{Module: "A", In: 1, Out: 1}) {
		t.Errorf("first pair = %v, want A(1,1)", first.Pair)
	}
	if first.InputSignal != "extA" || first.OutputSignal != "a1" {
		t.Errorf("first pair signals = %s->%s, want extA->a1", first.InputSignal, first.OutputSignal)
	}
	// B pairs come next, ordered (1,1),(1,2),(2,1),(2,2).
	wantB := []Pair{{"B", 1, 1}, {"B", 1, 2}, {"B", 2, 1}, {"B", 2, 2}}
	for i, w := range wantB {
		if pairs[1+i].Pair != w {
			t.Errorf("pair[%d] = %v, want %v", 1+i, pairs[1+i].Pair, w)
		}
	}
}

func TestPairString(t *testing.T) {
	p := Pair{Module: "CALC", In: 2, Out: 1}
	if got, want := p.String(), "P^CALC_{2,1}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestAllModuleMeasures(t *testing.T) {
	m := exampleMatrix(t)
	ms, err := m.AllModuleMeasures()
	if err != nil {
		t.Fatalf("AllModuleMeasures: %v", err)
	}
	byName := make(map[string]ModuleMeasures)
	for _, mm := range ms {
		byName[mm.Module] = mm
	}
	// A and C receive only system inputs: no exposure (OB1).
	for _, name := range []string{"A", "C"} {
		if byName[name].HasExposure {
			t.Errorf("module %s has exposure, want none (only system inputs)", name)
		}
	}
	b := byName["B"]
	if !b.HasExposure {
		t.Fatal("module B has no exposure, want some")
	}
	// Incoming arcs of B: A(1,1)=0.8 via a1; B(1,1)=0.5 and B(2,1)=0.9
	// via the bfb feedback. X̄ = 2.2, X = 2.2/3.
	if !almostEqual(b.NonWeightedExposure, 2.2) {
		t.Errorf("X̄^B = %v, want 2.2", b.NonWeightedExposure)
	}
	if !almostEqual(b.Exposure, 2.2/3) {
		t.Errorf("X^B = %v, want %v", b.Exposure, 2.2/3)
	}
	e := byName["E"]
	if !almostEqual(e.NonWeightedExposure, 1.3) {
		t.Errorf("X̄^E = %v, want 1.3", e.NonWeightedExposure)
	}
	if !almostEqual(e.Exposure, 1.3/3) {
		t.Errorf("X^E = %v, want %v", e.Exposure, 1.3/3)
	}
	d := byName["D"]
	if !almostEqual(d.NonWeightedExposure, 0.7) || !almostEqual(d.Exposure, 0.7) {
		t.Errorf("X^D/X̄^D = %v/%v, want 0.7/0.7", d.Exposure, d.NonWeightedExposure)
	}
}

// TestRelativePermeabilityBounds is a property-based check of the
// Eq. 2 and Eq. 3 bounds: for arbitrary in-range pair values,
// 0 <= P^M <= 1 and 0 <= P̄^M <= m·n.
func TestRelativePermeabilityBounds(t *testing.T) {
	sys := model.PaperExampleSystem()
	prop := func(raw []float64) bool {
		m := NewMatrix(sys)
		i := 0
		for _, pv := range m.Pairs() {
			if i >= len(raw) {
				break
			}
			v := math.Abs(raw[i])
			v -= math.Floor(v) // fold into [0,1)
			if err := m.Set(pv.Pair.Module, pv.Pair.In, pv.Pair.Out, v); err != nil {
				return false
			}
			i++
		}
		for _, mod := range sys.Modules() {
			rel, err := m.RelativePermeability(mod.Name)
			if err != nil || rel < 0 || rel > 1 {
				return false
			}
			nw, err := m.NonWeightedRelativePermeability(mod.Name)
			if err != nil || nw < 0 || nw > float64(mod.NumPairs()) {
				return false
			}
			// Eq. 2 and Eq. 3 are related by the m·n weighting factor.
			if !almostEqual(rel*float64(mod.NumPairs()), nw) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
