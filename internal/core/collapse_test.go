package core

import (
	"reflect"
	"testing"

	"propane/internal/model"
)

func TestCollapseChain(t *testing.T) {
	m := exampleMatrix(t)
	collapsed, err := Collapse(m, []string{"C", "D"}, "CD")
	if err != nil {
		t.Fatalf("Collapse: %v", err)
	}
	sys := collapsed.System()
	if got := sys.ModuleNames(); !reflect.DeepEqual(got, []string{"A", "B", "CD", "E"}) {
		t.Fatalf("modules = %v, want [A B CD E]", got)
	}
	cd, err := sys.Module("CD")
	if err != nil {
		t.Fatal(err)
	}
	if cd.NumInputs() != 1 || cd.NumOutputs() != 1 {
		t.Fatalf("CD ports = %d/%d, want 1/1", cd.NumInputs(), cd.NumOutputs())
	}
	// Single chain extC -> c1 -> d1: 1-(1-0.7·0.4) = 0.28.
	v, err := collapsed.Value("CD", 1, 1)
	if err != nil || !almostEqual(v, 0.28) {
		t.Errorf("P^CD = %v, %v; want 0.28", v, err)
	}
	// Untouched modules keep their values.
	b12, err := collapsed.Value("B", 1, 2)
	if err != nil || !almostEqual(b12, 0.6) {
		t.Errorf("B(1,2) after collapse = %v, %v; want 0.6", b12, err)
	}
	// The collapsed system remains fully analysable.
	tree, err := BacktrackTree(collapsed, "sysout")
	if err != nil {
		t.Fatalf("BacktrackTree on collapsed system: %v", err)
	}
	// Paths: b2 branch (3) + CD chain (1) + extE (1) = 5, as before
	// but with the CD chain shortened by one hop.
	if got := tree.Root.CountLeaves(); got != 5 {
		t.Errorf("collapsed tree paths = %d, want 5", got)
	}
}

func TestCollapseFeedbackModule(t *testing.T) {
	m := exampleMatrix(t)
	collapsed, err := Collapse(m, []string{"B"}, "Bx")
	if err != nil {
		t.Fatalf("Collapse: %v", err)
	}
	sys := collapsed.System()
	bx, err := sys.Module("Bx")
	if err != nil {
		t.Fatal(err)
	}
	// bfb is internal to the group (driven and consumed by B), so the
	// composite has one input (a1) and one output (b2).
	if got := bx.InputIndex("a1"); got != 1 {
		t.Errorf("Bx input a1 index = %d, want 1", got)
	}
	if bx.NumInputs() != 1 || bx.NumOutputs() != 1 {
		t.Fatalf("Bx ports = %d/%d, want 1/1", bx.NumInputs(), bx.NumOutputs())
	}
	// Paths a1->b2: direct 0.6; via one pass of the bfb loop
	// 0.5·0.3 = 0.15. P = 1-(1-0.6)(1-0.15) = 0.66.
	v, err := collapsed.Value("Bx", 1, 1)
	if err != nil || !almostEqual(v, 0.66) {
		t.Errorf("P^Bx = %v, %v; want 0.66", v, err)
	}
}

func TestCollapseWholeProcessingChain(t *testing.T) {
	// Collapse everything but the entry modules: the remaining system
	// is A, C -> composite -> (sysout), still valid and analysable.
	m := exampleMatrix(t)
	collapsed, err := Collapse(m, []string{"B", "D", "E"}, "CORE")
	if err != nil {
		t.Fatalf("Collapse: %v", err)
	}
	sys := collapsed.System()
	coreMod, err := sys.Module("CORE")
	if err != nil {
		t.Fatal(err)
	}
	// Boundary inputs: a1 (from A), c1 (from C), extE (external).
	if got := coreMod.NumInputs(); got != 3 {
		t.Errorf("CORE inputs = %d, want 3", got)
	}
	if got := coreMod.NumOutputs(); got != 1 {
		t.Errorf("CORE outputs = %d, want 1", got)
	}
	if !sys.IsSystemOutput("sysout") {
		t.Error("sysout lost system-output status")
	}
	// a1 -> sysout combines 0.6·0.9 and 0.5·0.3·0.9:
	// 1-(1-0.54)(1-0.135) = 0.6021. Boundary inputs are sorted, so a1
	// is input 1 of the composite.
	if got := coreMod.InputIndex("a1"); got != 1 {
		t.Fatalf("a1 index = %d, want 1", got)
	}
	v, err := collapsed.Value("CORE", 1, 1)
	if err != nil || !almostEqual(v, 1-(1-0.54)*(1-0.135)) {
		t.Errorf("a1->sysout = %v, %v; want 0.6021", v, err)
	}
}

func TestCollapseErrors(t *testing.T) {
	m := exampleMatrix(t)
	if _, err := Collapse(m, nil, "X"); err == nil {
		t.Error("Collapse with empty group succeeded")
	}
	if _, err := Collapse(m, []string{"NOPE"}, "X"); err == nil {
		t.Error("Collapse with unknown module succeeded")
	}
	if _, err := Collapse(m, []string{"B", "B"}, "X"); err == nil {
		t.Error("Collapse with duplicate group entry succeeded")
	}
	if _, err := Collapse(m, []string{"B"}, "E"); err == nil {
		t.Error("Collapse with colliding composite name succeeded")
	}
}

// TestCollapseEntireSystem: the whole system collapses into a single
// module whose pair permeabilities are the end-to-end path products —
// "this system may be seen as a larger component or module in an even
// larger system" (Section 3).
func TestCollapseEntireSystem(t *testing.T) {
	m := exampleMatrix(t)
	collapsed, err := Collapse(m, []string{"A", "B", "C", "D", "E"}, "ALL")
	if err != nil {
		t.Fatalf("Collapse(all): %v", err)
	}
	sys := collapsed.System()
	if got := sys.ModuleNames(); !reflect.DeepEqual(got, []string{"ALL"}) {
		t.Fatalf("modules = %v, want [ALL]", got)
	}
	all, err := sys.Module("ALL")
	if err != nil {
		t.Fatal(err)
	}
	if all.NumInputs() != 3 || all.NumOutputs() != 1 {
		t.Fatalf("ALL ports = %d/%d, want 3/1", all.NumInputs(), all.NumOutputs())
	}
	// extA -> sysout: paths 0.432 and 0.108 combine to
	// 1-(1-0.432)(1-0.108) = 0.493...
	v, err := collapsed.Value("ALL", all.InputIndex("extA"), 1)
	if err != nil || !almostEqual(v, 1-(1-0.432)*(1-0.108)) {
		t.Errorf("extA->sysout = %v, %v; want %v", v, err, 1-(1-0.432)*(1-0.108))
	}
	// extE -> sysout is the single direct pair.
	v, err = collapsed.Value("ALL", all.InputIndex("extE"), 1)
	if err != nil || !almostEqual(v, 0.2) {
		t.Errorf("extE->sysout = %v, %v; want 0.2", v, err)
	}
}

// TestCollapsePreservesDownstreamMeasures: collapsing an upstream
// subsystem must not change the relative permeability of untouched
// modules.
func TestCollapsePreservesDownstreamMeasures(t *testing.T) {
	m := exampleMatrix(t)
	before, err := m.RelativePermeability("E")
	if err != nil {
		t.Fatal(err)
	}
	collapsed, err := Collapse(m, []string{"C", "D"}, "CD")
	if err != nil {
		t.Fatal(err)
	}
	after, err := collapsed.RelativePermeability("E")
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(before, after) {
		t.Errorf("P^E changed from %v to %v across collapse", before, after)
	}
}

// TestCollapseIdentityOnPassthrough: collapsing a pass-through module
// with a single pair preserves its permeability exactly.
func TestCollapseIdentityOnPassthrough(t *testing.T) {
	sys, err := model.NewBuilder("chain").
		AddModule("P", []string{"in"}, []string{"mid"}).
		AddModule("Q", []string{"mid"}, []string{"out"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatrix(sys)
	if err := m.Set("P", 1, 1, 0.42); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("Q", 1, 1, 0.9); err != nil {
		t.Fatal(err)
	}
	collapsed, err := Collapse(m, []string{"P"}, "P2")
	if err != nil {
		t.Fatal(err)
	}
	v, err := collapsed.Value("P2", 1, 1)
	if err != nil || !almostEqual(v, 0.42) {
		t.Errorf("identity collapse = %v, %v; want 0.42", v, err)
	}
}
