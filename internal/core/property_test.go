package core

import (
	"math/rand"
	"testing"

	"propane/internal/model"
)

// randomMatrix fills a matrix with deterministic pseudo-random values.
func randomMatrix(t *testing.T, sys *model.System, seed int64) *Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(sys)
	for _, pv := range m.Pairs() {
		if err := m.Set(pv.Pair.Module, pv.Pair.In, pv.Pair.Out, rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// TestRandomSystemsAnalysable: the full analysis pipeline terminates
// and respects its invariants on a spread of generated topologies.
func TestRandomSystemsAnalysable(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		sys, err := model.RandomSystem(model.GenOptions{
			Modules:      3 + int(seed%6),
			MaxPorts:     1 + int(seed%3),
			FeedbackProb: float64(seed%4) / 4,
			Seed:         seed,
		})
		if err != nil {
			t.Fatalf("seed %d: RandomSystem: %v", seed, err)
		}
		m := randomMatrix(t, sys, seed*77)

		// Eq. 2 / Eq. 3 relation for every module.
		for _, mod := range sys.Modules() {
			rel, err := m.RelativePermeability(mod.Name)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			nw, err := m.NonWeightedRelativePermeability(mod.Name)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !almostEqual(rel*float64(mod.NumPairs()), nw) {
				t.Errorf("seed %d module %s: Eq2·m·n != Eq3 (%v vs %v)", seed, mod.Name, rel, nw)
			}
		}

		// Backtrack forest: bounded path weights, terminal leaves are
		// system inputs, feedback leaves only in feedback systems.
		forest, err := BacktrackForest(m)
		if err != nil {
			t.Fatalf("seed %d: BacktrackForest: %v", seed, err)
		}
		for out, tree := range forest {
			for _, p := range tree.Paths() {
				w := p.Weight()
				if w < 0 || w > 1 {
					t.Errorf("seed %d output %s: path weight %v out of [0,1]", seed, out, w)
				}
				if p.LeafKind == KindTerminal && !sys.IsSystemInput(p.Leaf()) {
					t.Errorf("seed %d output %s: terminal leaf %q is not a system input", seed, out, p.Leaf())
				}
			}
		}

		// Trace forest terminates and reaches only system outputs at
		// terminal leaves.
		tforest, err := TraceForest(m)
		if err != nil {
			t.Fatalf("seed %d: TraceForest: %v", seed, err)
		}
		for in, tree := range tforest {
			for _, p := range tree.Paths() {
				if p.LeafKind == KindTerminal && !sys.IsSystemOutput(p.Leaf()) {
					t.Errorf("seed %d input %s: terminal leaf %q is not a system output", seed, in, p.Leaf())
				}
			}
		}

		// End-to-end predictions are probabilities.
		for _, out := range sys.SystemOutputs() {
			preds, err := PredictAllEndToEnd(m, out)
			if err != nil {
				t.Fatalf("seed %d: PredictAllEndToEnd: %v", seed, err)
			}
			for _, p := range preds {
				if p.Predicted < 0 || p.Predicted > 1 {
					t.Errorf("seed %d: prediction %v out of [0,1]", seed, p)
				}
			}
		}

		// Placement advice never fails on a valid matrix.
		if _, err := Advise(m); err != nil {
			t.Fatalf("seed %d: Advise: %v", seed, err)
		}
	}
}

// TestSignalExposurePartition: every pair contributes to the S_p of at
// most one signal (the signal its output drives), so the total signal
// exposure never exceeds the sum of all pair permeabilities, and each
// signal's exposure never exceeds its driver's non-weighted relative
// permeability.
func TestSignalExposurePartition(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		sys, err := model.RandomSystem(model.GenOptions{
			Modules: 4 + int(seed%5), MaxPorts: 2, FeedbackProb: 0.3, Seed: seed * 13,
		})
		if err != nil {
			t.Fatal(err)
		}
		m := randomMatrix(t, sys, seed)
		exposures, err := SignalExposures(m)
		if err != nil {
			t.Fatal(err)
		}
		totalPairs := 0.0
		for _, pv := range m.Pairs() {
			totalPairs += pv.Value
		}
		totalExp := 0.0
		for _, se := range exposures {
			totalExp += se.Exposure
			drv, driven := sys.Driver(se.Signal)
			if !driven {
				if se.Exposure != 0 {
					t.Errorf("seed %d: system input %s has exposure %v", seed, se.Signal, se.Exposure)
				}
				continue
			}
			nw, err := m.NonWeightedRelativePermeability(drv.Module)
			if err != nil {
				t.Fatal(err)
			}
			if se.Exposure > nw+1e-9 {
				t.Errorf("seed %d: X^%s = %v exceeds driver P̄ = %v", seed, se.Signal, se.Exposure, nw)
			}
		}
		if totalExp > totalPairs+1e-9 {
			t.Errorf("seed %d: ΣX^S = %v exceeds Σ pairs = %v", seed, totalExp, totalPairs)
		}
	}
}

// TestCollapsePropertyDownstreamInvariance: collapsing any proper
// prefix of modules never changes the measures of the remaining ones.
func TestCollapsePropertyDownstreamInvariance(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		sys, err := model.RandomSystem(model.GenOptions{
			Modules: 5, MaxPorts: 2, FeedbackProb: 0.25, Seed: seed * 31,
		})
		if err != nil {
			t.Fatal(err)
		}
		m := randomMatrix(t, sys, seed*7)
		names := sys.ModuleNames()
		group := names[:2]
		collapsed, err := Collapse(m, group, "GRP")
		if err != nil {
			// Some random prefixes do not form a valid subsystem
			// (e.g. no boundary output); that is a legitimate error,
			// not a property violation.
			continue
		}
		for _, rest := range names[2:] {
			before, err := m.NonWeightedRelativePermeability(rest)
			if err != nil {
				t.Fatal(err)
			}
			after, err := collapsed.NonWeightedRelativePermeability(rest)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(before, after) {
				t.Errorf("seed %d: P̄^%s changed %v -> %v across collapse", seed, rest, before, after)
			}
		}
		// Composite permeabilities are probabilities.
		grp, err := collapsed.System().Module("GRP")
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range grp.Inputs {
			for _, out := range grp.Outputs {
				v, err := collapsed.Value("GRP", in.Index, out.Index)
				if err != nil {
					t.Fatal(err)
				}
				if v < 0 || v > 1 {
					t.Errorf("seed %d: composite pair value %v out of [0,1]", seed, v)
				}
			}
		}
	}
}

// TestSensitivityNonNegative: sensitivities are non-negative sums of
// products of probabilities on every random topology.
func TestSensitivityNonNegative(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		sys, err := model.RandomSystem(model.GenOptions{
			Modules: 4, MaxPorts: 2, FeedbackProb: 0.5, Seed: seed * 101,
		})
		if err != nil {
			t.Fatal(err)
		}
		m := randomMatrix(t, sys, seed*3)
		for _, out := range sys.SystemOutputs() {
			sens, err := PathSensitivities(m, out)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range sens {
				if s.Sensitivity < 0 {
					t.Errorf("seed %d: negative sensitivity %+v", seed, s)
				}
				if s.PathCount < 0 {
					t.Errorf("seed %d: negative path count %+v", seed, s)
				}
			}
		}
	}
}
