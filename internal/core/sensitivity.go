package core

import (
	"sort"
)

// PairSensitivity quantifies how much the aggregate propagation weight
// toward a system output would change per unit change of one pair's
// permeability: the partial derivative of the sum of all backtrack-
// path weights with respect to that pair. High-sensitivity pairs are
// the most effective targets for error-containment work (wrappers,
// ERMs): reducing their permeability shrinks the system output's
// exposure fastest. This extends the paper's Section 5 guidance with
// an explicit "what should we harden first" ordering.
type PairSensitivity struct {
	Pair         Pair
	InputSignal  string
	OutputSignal string
	// Sensitivity is d(Σ path weights)/d(P_pair): the sum, over every
	// root-to-leaf path containing the pair, of the product of the
	// other permeabilities along the path.
	Sensitivity float64
	// PathCount is the number of paths through the pair.
	PathCount int
}

// PathSensitivities computes the sensitivity of the named system
// output to every input/output pair, sorted by decreasing sensitivity
// (ties by pair order). Pairs on no path to the output have zero
// sensitivity and are included for completeness.
//
// Each pair occurs at most once per path (the feedback unrolling
// guarantees a module output is traversed at most once per path), so
// the derivative of a path's weight with respect to a pair on it is
// simply the product of the remaining edge weights.
func PathSensitivities(m *Matrix, output string) ([]PairSensitivity, error) {
	tree, err := BacktrackTree(m, output)
	if err != nil {
		return nil, err
	}

	acc := make(map[Pair]*PairSensitivity)
	for _, pv := range m.Pairs() {
		acc[pv.Pair] = &PairSensitivity{
			Pair:         pv.Pair,
			InputSignal:  pv.InputSignal,
			OutputSignal: pv.OutputSignal,
		}
	}

	for _, path := range tree.Paths() {
		for i, step := range path.Steps {
			rest := 1.0
			for j, other := range path.Steps {
				if j != i {
					rest *= other.Weight
				}
			}
			ps, ok := acc[step.Pair]
			if !ok {
				// Defensive: every step pair stems from the topology.
				continue
			}
			ps.Sensitivity += rest
			ps.PathCount++
		}
	}

	order := make(map[string]int)
	for i, name := range m.System().ModuleNames() {
		order[name] = i
	}
	out := make([]PairSensitivity, 0, len(acc))
	for _, ps := range acc {
		out = append(out, *ps)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Sensitivity != out[b].Sensitivity {
			return out[a].Sensitivity > out[b].Sensitivity
		}
		pa, pb := out[a].Pair, out[b].Pair
		if order[pa.Module] != order[pb.Module] {
			return order[pa.Module] < order[pb.Module]
		}
		if pa.In != pb.In {
			return pa.In < pb.In
		}
		return pa.Out < pb.Out
	})
	return out, nil
}
