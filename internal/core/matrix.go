package core

import (
	"fmt"
	"sort"

	"propane/internal/model"
)

// Pair identifies one input/output pair of one module; the permeability
// value P^M_{i,k} of the paper's Eq. 1 is attached to a Pair. Indices
// are 1-based, matching the paper's numbering.
type Pair struct {
	Module string
	In     int
	Out    int
}

// String renders the pair in the paper's P^M_{i,k} notation.
func (p Pair) String() string {
	return fmt.Sprintf("P^%s_{%d,%d}", p.Module, p.In, p.Out)
}

// PairValue couples a pair with its permeability value and the signal
// names on both ports, for reporting.
type PairValue struct {
	Pair         Pair
	InputSignal  string
	OutputSignal string
	Value        float64
}

// Matrix holds one error-permeability value for every input/output
// pair of every module of a system. A fresh Matrix is zero-filled;
// values are assigned with Set (typically from the fault-injection
// estimates of internal/campaign, or by hand for analytic studies).
type Matrix struct {
	sys  *model.System
	vals map[Pair]float64
}

// NewMatrix returns a zero-filled permeability matrix for the system.
func NewMatrix(sys *model.System) *Matrix {
	m := &Matrix{sys: sys, vals: make(map[Pair]float64)}
	for _, mod := range sys.Modules() {
		for _, in := range mod.Inputs {
			for _, out := range mod.Outputs {
				m.vals[Pair{Module: mod.Name, In: in.Index, Out: out.Index}] = 0
			}
		}
	}
	return m
}

// System returns the system this matrix is bound to.
func (m *Matrix) System() *model.System { return m.sys }

// Len returns the number of input/output pairs (25 for the paper's
// target system).
func (m *Matrix) Len() int { return len(m.vals) }

// Set assigns the permeability value of the pair (in, out) of the
// named module. The value must lie in [0, 1] (Eq. 1) and the pair must
// exist in the system.
func (m *Matrix) Set(module string, in, out int, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("core: permeability %v for %v out of range [0,1]", p, Pair{module, in, out})
	}
	key := Pair{Module: module, In: in, Out: out}
	if _, ok := m.vals[key]; !ok {
		return fmt.Errorf("core: system %s has no pair %v", m.sys.Name(), key)
	}
	m.vals[key] = p
	return nil
}

// SetBySignal assigns the permeability value of the pair identified by
// input and output signal names of the named module.
func (m *Matrix) SetBySignal(module, inSignal, outSignal string, p float64) error {
	mod, err := m.sys.Module(module)
	if err != nil {
		return err
	}
	in := mod.InputIndex(inSignal)
	if in == 0 {
		return fmt.Errorf("core: module %s has no input signal %q", module, inSignal)
	}
	out := mod.OutputIndex(outSignal)
	if out == 0 {
		return fmt.Errorf("core: module %s has no output signal %q", module, outSignal)
	}
	return m.Set(module, in, out, p)
}

// Value returns the permeability of the pair, or an error if the pair
// does not exist.
func (m *Matrix) Value(module string, in, out int) (float64, error) {
	v, ok := m.vals[Pair{Module: module, In: in, Out: out}]
	if !ok {
		return 0, fmt.Errorf("core: system %s has no pair %v", m.sys.Name(), Pair{module, in, out})
	}
	return v, nil
}

// at returns the permeability of a pair known to exist (internal use
// on pairs enumerated from the topology itself).
func (m *Matrix) at(p Pair) float64 { return m.vals[p] }

// Pairs returns every pair with its value and signal names, sorted by
// module (system insertion order), then input, then output index.
func (m *Matrix) Pairs() []PairValue {
	order := make(map[string]int)
	for i, name := range m.sys.ModuleNames() {
		order[name] = i
	}
	out := make([]PairValue, 0, len(m.vals))
	for _, mod := range m.sys.Modules() {
		for _, in := range mod.Inputs {
			for _, o := range mod.Outputs {
				p := Pair{Module: mod.Name, In: in.Index, Out: o.Index}
				out = append(out, PairValue{
					Pair:         p,
					InputSignal:  in.Signal,
					OutputSignal: o.Signal,
					Value:        m.vals[p],
				})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		pa, pb := out[a].Pair, out[b].Pair
		if order[pa.Module] != order[pb.Module] {
			return order[pa.Module] < order[pb.Module]
		}
		if pa.In != pb.In {
			return pa.In < pb.In
		}
		return pa.Out < pb.Out
	})
	return out
}

// RelativePermeability computes P^M of Eq. 2: the pair permeabilities
// of the module averaged over its m·n pairs. It is an abstract measure
// used to obtain a relative ordering across modules, not an overall
// propagation probability.
func (m *Matrix) RelativePermeability(module string) (float64, error) {
	mod, err := m.sys.Module(module)
	if err != nil {
		return 0, err
	}
	n := mod.NumPairs()
	if n == 0 {
		return 0, fmt.Errorf("core: module %s has no input/output pairs", module)
	}
	sum, err := m.NonWeightedRelativePermeability(module)
	if err != nil {
		return 0, err
	}
	return sum / float64(n), nil
}

// NonWeightedRelativePermeability computes P̄^M of Eq. 3: the sum of
// the module's pair permeabilities, bounded by m·n. Removing the
// weighting factor "punishes" modules with many inputs and outputs,
// distinguishing hub modules from small ones.
func (m *Matrix) NonWeightedRelativePermeability(module string) (float64, error) {
	mod, err := m.sys.Module(module)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, in := range mod.Inputs {
		for _, out := range mod.Outputs {
			sum += m.vals[Pair{Module: module, In: in.Index, Out: out.Index}]
		}
	}
	return sum, nil
}

// ModuleMeasures aggregates the four per-module measures of the
// paper's Table 2.
type ModuleMeasures struct {
	Module string
	// Relative is P^M (Eq. 2).
	Relative float64
	// NonWeighted is P̄^M (Eq. 3).
	NonWeighted float64
	// Exposure is X^M (Eq. 4); valid only when HasExposure is true.
	Exposure float64
	// NonWeightedExposure is X̄^M (Eq. 5); valid only when HasExposure
	// is true.
	NonWeightedExposure float64
	// HasExposure is false for modules whose inputs are all system
	// inputs (paper observation OB1: such modules have no incoming
	// arcs in the permeability graph).
	HasExposure bool
}

// AllModuleMeasures computes Table-2 style measures for every module,
// in system insertion order.
func (m *Matrix) AllModuleMeasures() ([]ModuleMeasures, error) {
	g, err := NewGraph(m)
	if err != nil {
		return nil, err
	}
	out := make([]ModuleMeasures, 0, len(m.sys.ModuleNames()))
	for _, name := range m.sys.ModuleNames() {
		rel, err := m.RelativePermeability(name)
		if err != nil {
			return nil, err
		}
		nw, err := m.NonWeightedRelativePermeability(name)
		if err != nil {
			return nil, err
		}
		mm := ModuleMeasures{Module: name, Relative: rel, NonWeighted: nw}
		if x, xb, ok := g.Exposure(name); ok {
			mm.Exposure, mm.NonWeightedExposure, mm.HasExposure = x, xb, true
		}
		out = append(out, mm)
	}
	return out, nil
}
