package core

import (
	"container/heap"
	"fmt"
)

// TopPaths returns the k highest-weight root-to-leaf paths of the tree
// without materialising every path: branches whose weight prefix
// already falls below the current k-th best weight are pruned. For the
// small trees of the paper's target this is a convenience; for
// generated or collapsed systems with wide fan-out it keeps "find the
// paths with the highest propagation probability" (Section 4.2)
// tractable.
//
// The result is ordered by decreasing weight, with the same
// tie-breaking as RankedPaths (shorter first, then rendering).
func (t *Tree) TopPaths(k int) ([]Path, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}

	h := &pathHeap{}
	heap.Init(h)
	bound := func() float64 {
		if h.Len() < k {
			return -1 // accept anything until the heap is full
		}
		return (*h)[0].weight
	}

	var steps []Step
	var rec func(n *Node, weight float64)
	rec = func(n *Node, weight float64) {
		if n.Kind != KindRoot {
			weight *= n.Weight
			steps = append(steps, Step{Signal: n.Signal, Pair: n.Pair, Weight: n.Weight})
			defer func() { steps = steps[:len(steps)-1] }()
		}
		// Prune: weights only shrink along a path (all factors <= 1),
		// so a prefix below the current k-th best cannot recover. Ties
		// must still be explored for deterministic tie-breaking.
		if weight < bound() {
			return
		}
		if n.IsLeaf() {
			p := Path{Root: t.Root.Signal, Steps: make([]Step, len(steps)), LeafKind: n.Kind}
			copy(p.Steps, steps)
			if h.Len() < k {
				heap.Push(h, scoredPath{path: p, weight: weight})
			} else if better(p, weight, (*h)[0].path, (*h)[0].weight) {
				(*h)[0] = scoredPath{path: p, weight: weight}
				heap.Fix(h, 0)
			}
			return
		}
		for _, c := range n.Children {
			rec(c, weight)
		}
	}
	rec(t.Root, 1)

	out := make([]Path, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(scoredPath).path
	}
	return out, nil
}

// better reports whether path a (weight wa) ranks ahead of path b
// (weight wb) under the RankedPaths ordering.
func better(a Path, wa float64, b Path, wb float64) bool {
	if wa != wb {
		return wa > wb
	}
	if len(a.Steps) != len(b.Steps) {
		return len(a.Steps) < len(b.Steps)
	}
	return a.String() < b.String()
}

// scoredPath pairs a path with its weight for the bounded heap.
type scoredPath struct {
	path   Path
	weight float64
}

// pathHeap is a min-heap on the RankedPaths ordering: the root is the
// currently worst of the kept paths, ready to be displaced.
type pathHeap []scoredPath

func (h pathHeap) Len() int { return len(h) }
func (h pathHeap) Less(i, j int) bool {
	return better(h[j].path, h[j].weight, h[i].path, h[i].weight)
}
func (h pathHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x any)   { *h = append(*h, x.(scoredPath)) }
func (h *pathHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
