package core

import (
	"testing"
	"testing/quick"

	"propane/internal/model"
)

func TestBacktrackTreeStructure(t *testing.T) {
	m := exampleMatrix(t)
	tree, err := BacktrackTree(m, "sysout")
	if err != nil {
		t.Fatalf("BacktrackTree: %v", err)
	}
	root := tree.Root
	if root.Kind != KindRoot || root.Signal != "sysout" {
		t.Fatalf("root = %s/%v, want sysout/root", root.Signal, root.Kind)
	}
	if len(root.Children) != 3 {
		t.Fatalf("root has %d children, want 3 (b2, d1, extE)", len(root.Children))
	}
	// Children follow the input-port order of the driving module E.
	wantSignals := []string{"b2", "d1", "extE"}
	for i, c := range root.Children {
		if c.Signal != wantSignals[i] {
			t.Errorf("root child %d = %s, want %s", i, c.Signal, wantSignals[i])
		}
	}
	if got, want := root.CountLeaves(), 5; got != want {
		t.Errorf("CountLeaves() = %d, want %d", got, want)
	}

	// The b2 branch goes through B, whose local feedback must be
	// followed exactly once and then terminated with a feedback leaf.
	b2 := root.Children[0]
	if b2.Kind != KindInternal {
		t.Fatalf("b2 kind = %v, want internal", b2.Kind)
	}
	if len(b2.Children) != 2 {
		t.Fatalf("b2 has %d children, want 2 (a1, bfb)", len(b2.Children))
	}
	bfb := b2.Children[1]
	if bfb.Signal != "bfb" || bfb.Kind != KindInternal {
		t.Fatalf("b2 child 1 = %s/%v, want bfb/internal", bfb.Signal, bfb.Kind)
	}
	if len(bfb.Children) != 2 {
		t.Fatalf("bfb has %d children, want 2", len(bfb.Children))
	}
	inner := bfb.Children[1]
	if inner.Signal != "bfb" || inner.Kind != KindFeedback {
		t.Errorf("inner bfb = %s/%v, want bfb/feedback (recursion broken)", inner.Signal, inner.Kind)
	}
	if !inner.IsLeaf() {
		t.Error("feedback node is not a leaf")
	}

	// Terminal leaves are system inputs.
	extE := root.Children[2]
	if extE.Kind != KindTerminal {
		t.Errorf("extE kind = %v, want terminal", extE.Kind)
	}
	if !almostEqual(extE.Weight, 0.2) {
		t.Errorf("extE weight = %v, want 0.2 (E pair 3,1)", extE.Weight)
	}
}

func TestBacktrackTreeErrors(t *testing.T) {
	m := exampleMatrix(t)
	if _, err := BacktrackTree(m, "extA"); err == nil {
		t.Error("BacktrackTree(extA) succeeded, want error (not a system output)")
	}
	if _, err := BacktrackTree(m, "b2"); err == nil {
		t.Error("BacktrackTree(b2) succeeded, want error (internal signal)")
	}
}

func TestBacktrackForest(t *testing.T) {
	m := exampleMatrix(t)
	forest, err := BacktrackForest(m)
	if err != nil {
		t.Fatalf("BacktrackForest: %v", err)
	}
	if len(forest) != 1 {
		t.Fatalf("forest size = %d, want 1", len(forest))
	}
	if _, ok := forest["sysout"]; !ok {
		t.Error("forest missing tree for sysout")
	}
}

func TestTraceTreeStructure(t *testing.T) {
	m := exampleMatrix(t)
	tree, err := TraceTree(m, "extA")
	if err != nil {
		t.Fatalf("TraceTree: %v", err)
	}
	root := tree.Root
	if root.Signal != "extA" || root.Kind != KindRoot {
		t.Fatalf("root = %s/%v, want extA/root", root.Signal, root.Kind)
	}
	// extA feeds only module A, which has one output.
	if len(root.Children) != 1 {
		t.Fatalf("root has %d children, want 1 (a1)", len(root.Children))
	}
	a1 := root.Children[0]
	if a1.Signal != "a1" || !almostEqual(a1.Weight, 0.8) {
		t.Fatalf("a1 node = %s w=%v, want a1 w=0.8", a1.Signal, a1.Weight)
	}
	// a1 feeds B input 1: children bfb (pair 1,1) and b2 (pair 1,2).
	if len(a1.Children) != 2 {
		t.Fatalf("a1 has %d children, want 2", len(a1.Children))
	}
	bfb, b2 := a1.Children[0], a1.Children[1]
	if bfb.Signal != "bfb" || b2.Signal != "b2" {
		t.Fatalf("a1 children = %s,%s; want bfb,b2", bfb.Signal, b2.Signal)
	}
	// bfb feeds B input 2 (the feedback): followed once, then broken.
	if bfb.Kind != KindInternal || len(bfb.Children) != 2 {
		t.Fatalf("bfb kind=%v children=%d, want internal/2", bfb.Kind, len(bfb.Children))
	}
	if bfb.Children[0].Signal != "bfb" || bfb.Children[0].Kind != KindFeedback {
		t.Errorf("inner bfb = %s/%v, want bfb/feedback", bfb.Children[0].Signal, bfb.Children[0].Kind)
	}
	// Leaves of the trace tree are system outputs (or feedback).
	if got, want := root.CountLeaves(), 3; got != want {
		t.Errorf("CountLeaves() = %d, want %d", got, want)
	}
	for _, p := range tree.Paths() {
		if p.LeafKind == KindTerminal && p.Leaf() != "sysout" {
			t.Errorf("terminal leaf %q, want sysout", p.Leaf())
		}
	}
}

func TestTraceTreeSimpleChains(t *testing.T) {
	m := exampleMatrix(t)
	tests := []struct {
		input      string
		wantPaths  int
		wantWeight float64
	}{
		{"extC", 1, 0.7 * 0.4 * 0.5},
		{"extE", 1, 0.2},
	}
	for _, tt := range tests {
		t.Run(tt.input, func(t *testing.T) {
			tree, err := TraceTree(m, tt.input)
			if err != nil {
				t.Fatalf("TraceTree: %v", err)
			}
			paths := tree.Paths()
			if len(paths) != tt.wantPaths {
				t.Fatalf("paths = %d, want %d", len(paths), tt.wantPaths)
			}
			if !almostEqual(paths[0].Weight(), tt.wantWeight) {
				t.Errorf("weight = %v, want %v", paths[0].Weight(), tt.wantWeight)
			}
		})
	}
}

func TestTraceTreeErrors(t *testing.T) {
	m := exampleMatrix(t)
	if _, err := TraceTree(m, "sysout"); err == nil {
		t.Error("TraceTree(sysout) succeeded, want error")
	}
	if _, err := TraceTree(m, "bfb"); err == nil {
		t.Error("TraceTree(bfb) succeeded, want error")
	}
}

func TestTraceForest(t *testing.T) {
	m := exampleMatrix(t)
	forest, err := TraceForest(m)
	if err != nil {
		t.Fatalf("TraceForest: %v", err)
	}
	if len(forest) != 3 {
		t.Fatalf("forest size = %d, want 3", len(forest))
	}
	for _, in := range []string{"extA", "extC", "extE"} {
		if _, ok := forest[in]; !ok {
			t.Errorf("forest missing tree for %s", in)
		}
	}
}

func TestNodeKindString(t *testing.T) {
	tests := []struct {
		k    NodeKind
		want string
	}{
		{KindRoot, "root"},
		{KindInternal, "internal"},
		{KindTerminal, "terminal"},
		{KindFeedback, "feedback"},
		{NodeKind(99), "NodeKind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("NodeKind(%d).String() = %q, want %q", int(tt.k), got, tt.want)
		}
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	m := exampleMatrix(t)
	tree, err := BacktrackTree(m, "sysout")
	if err != nil {
		t.Fatalf("BacktrackTree: %v", err)
	}
	count := 0
	tree.Root.Walk(func(*Node) { count++ })
	if count != tree.Root.CountNodes() {
		t.Errorf("Walk visited %d nodes, CountNodes = %d", count, tree.Root.CountNodes())
	}
}

// TestTreeStructureIndependentOfValues checks the property that tree
// shape (nodes, leaves, kinds) depends only on topology, not on the
// permeability values.
func TestTreeStructureIndependentOfValues(t *testing.T) {
	sys := model.PaperExampleSystem()
	base := NewMatrix(sys)
	baseTree, err := BacktrackTree(base, "sysout")
	if err != nil {
		t.Fatalf("BacktrackTree: %v", err)
	}
	wantNodes, wantLeaves := baseTree.Root.CountNodes(), baseTree.Root.CountLeaves()

	prop := func(seed uint32) bool {
		m := NewMatrix(sys)
		v := float64(seed%1000) / 1000
		for _, pv := range m.Pairs() {
			if err := m.Set(pv.Pair.Module, pv.Pair.In, pv.Pair.Out, v); err != nil {
				return false
			}
		}
		tree, err := BacktrackTree(m, "sysout")
		if err != nil {
			return false
		}
		return tree.Root.CountNodes() == wantNodes && tree.Root.CountLeaves() == wantLeaves
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
