// Package core implements the error-propagation analysis framework of
// Hiller, Jhumka and Suri, "An Approach for Analysing the Propagation
// of Data Errors in Software" (DSN 2001).
//
// The basic measure is error permeability (Eq. 1): for input i and
// output k of a module M,
//
//	P^M_{i,k} = Pr{ error on output k | error on input i },
//
// one value per input/output pair, held in a Matrix bound to a
// model.System. On top of it the package provides:
//
//   - relative permeability P^M (Eq. 2) and non-weighted relative
//     permeability P̄^M (Eq. 3) for ranking modules;
//   - the permeability Graph whose arcs carry pair permeabilities,
//     and the error exposure X^M (Eq. 4) and non-weighted error
//     exposure X̄^M (Eq. 5) computed from a module's incoming arcs;
//   - backtrack trees (Output Error Tracing, steps A1–A4) and trace
//     trees (Input Error Tracing, steps B1–B4), with module feedback
//     loops unrolled exactly once per path;
//   - propagation-path enumeration with path weights (products of
//     permeabilities along the path) and ranking;
//   - signal error exposure X^S (Eq. 6) over the backtrack forest;
//   - the EDM/ERM placement advisor implementing the Section 5 rules
//     of thumb.
package core
