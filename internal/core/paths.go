package core

import (
	"fmt"
	"sort"
	"strings"
)

// Step is one hop of a propagation path: the arc from a tree node to
// one of its children, weighted with a pair permeability.
type Step struct {
	// Signal is the signal the path reaches with this step.
	Signal string
	// Pair is the input/output pair whose permeability the step uses.
	Pair Pair
	// Weight is that pair's permeability value.
	Weight float64
}

// Path is one root-to-leaf propagation path of a backtrack or trace
// tree. For a backtrack tree the path runs from a system output back
// to a system input (or feedback break-point); for a trace tree it
// runs from a system input forward to a system output.
type Path struct {
	// Root is the signal at the tree root.
	Root string
	// Steps are the hops from the root to the leaf, in order.
	Steps []Step
	// LeafKind is the kind of the terminating node (KindTerminal or
	// KindFeedback).
	LeafKind NodeKind
}

// Leaf returns the signal at the end of the path.
func (p Path) Leaf() string {
	if len(p.Steps) == 0 {
		return p.Root
	}
	return p.Steps[len(p.Steps)-1].Signal
}

// Weight returns the total path weight: the product of the error
// permeability values along the path (Section 4.2). For a backtrack
// path this is the conditional probability that, given an error on the
// root output originating at the leaf input, it propagated along
// exactly this route.
func (p Path) Weight() float64 {
	w := 1.0
	for _, s := range p.Steps {
		w *= s.Weight
	}
	return w
}

// AdjustedWeight scales the path weight with the probability of an
// error appearing on the path's source signal, giving P' of Section
// 4.2: the probability of an error appearing on the system input and
// propagating along this path to the system output.
func (p Path) AdjustedWeight(sourceErrProb float64) float64 {
	return sourceErrProb * p.Weight()
}

// String renders the path as "root <- s1 <- s2" (backtrack direction
// is implied by the caller's tree; the rendering is root-first).
func (p Path) String() string {
	var b strings.Builder
	b.WriteString(p.Root)
	for _, s := range p.Steps {
		b.WriteString(" <- ")
		b.WriteString(s.Signal)
	}
	if p.LeafKind == KindFeedback {
		b.WriteString(" (feedback)")
	}
	return b.String()
}

// pairNotation renders the sequence of permeability pairs along the
// path, e.g. "P^A_{1,1}·P^B_{1,2}·P^E_{1,1}".
func (p Path) pairNotation() string {
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		parts[i] = s.Pair.String()
	}
	return strings.Join(parts, "·")
}

// PairNotation renders the sequence of permeability pairs along the
// path in the paper's product notation.
func (p Path) PairNotation() string { return p.pairNotation() }

// Paths enumerates every root-to-leaf path of the tree in stable
// (depth-first, port-index) order.
func (t *Tree) Paths() []Path {
	var out []Path
	var steps []Step
	var rec func(n *Node)
	rec = func(n *Node) {
		if n.Kind != KindRoot {
			steps = append(steps, Step{Signal: n.Signal, Pair: n.Pair, Weight: n.Weight})
		}
		if n.IsLeaf() {
			p := Path{Root: t.Root.Signal, Steps: make([]Step, len(steps)), LeafKind: n.Kind}
			copy(p.Steps, steps)
			out = append(out, p)
		}
		for _, c := range n.Children {
			rec(c)
		}
		if n.Kind != KindRoot {
			steps = steps[:len(steps)-1]
		}
	}
	rec(t.Root)
	return out
}

// RankedPaths returns the tree's paths ordered by decreasing weight
// (ties broken by path length, shorter first, then by rendering for
// stability). This is the paper's Table-4 ordering.
func (t *Tree) RankedPaths() []Path {
	paths := t.Paths()
	sort.SliceStable(paths, func(a, b int) bool {
		wa, wb := paths[a].Weight(), paths[b].Weight()
		if wa != wb {
			return wa > wb
		}
		if len(paths[a].Steps) != len(paths[b].Steps) {
			return len(paths[a].Steps) < len(paths[b].Steps)
		}
		return paths[a].String() < paths[b].String()
	})
	return paths
}

// NonZeroPaths returns the ranked paths with weight strictly greater
// than zero: "the paths along which errors might propagate".
func (t *Tree) NonZeroPaths() []Path {
	var out []Path
	for _, p := range t.RankedPaths() {
		if p.Weight() > 0 {
			out = append(out, p)
		}
	}
	return out
}

// SignalsOnEveryPath returns the signals (excluding the root) that
// appear on every one of the given paths — candidates for ERM
// placement per observation OB5: eliminating errors there protects the
// root output entirely.
func SignalsOnEveryPath(paths []Path) []string {
	if len(paths) == 0 {
		return nil
	}
	counts := make(map[string]int)
	for _, p := range paths {
		seen := make(map[string]bool)
		for _, s := range p.Steps {
			if !seen[s.Signal] {
				seen[s.Signal] = true
				counts[s.Signal]++
			}
		}
	}
	var out []string
	for sig, c := range counts {
		if c == len(paths) {
			out = append(out, sig)
		}
	}
	sort.Strings(out)
	return out
}

// FormatPathTable renders paths one per line with rank, weight and
// pair notation; a compact textual stand-in for the paper's Table 4.
func FormatPathTable(paths []Path) string {
	var b strings.Builder
	for i, p := range paths {
		fmt.Fprintf(&b, "%2d  w=%.6f  %s  [%s]\n", i+1, p.Weight(), p.String(), p.pairNotation())
	}
	return b.String()
}
