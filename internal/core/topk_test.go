package core

import (
	"math/rand"
	"reflect"
	"testing"

	"propane/internal/model"
)

func TestTopPathsMatchesRankedPrefix(t *testing.T) {
	m := exampleMatrix(t)
	tree, err := BacktrackTree(m, "sysout")
	if err != nil {
		t.Fatal(err)
	}
	ranked := tree.RankedPaths()
	for k := 1; k <= len(ranked)+2; k++ {
		top, err := tree.TopPaths(k)
		if err != nil {
			t.Fatalf("TopPaths(%d): %v", k, err)
		}
		want := ranked
		if k < len(ranked) {
			want = ranked[:k]
		}
		if len(top) != len(want) {
			t.Fatalf("TopPaths(%d) returned %d paths, want %d", k, len(top), len(want))
		}
		for i := range want {
			if top[i].String() != want[i].String() || !almostEqual(top[i].Weight(), want[i].Weight()) {
				t.Errorf("TopPaths(%d)[%d] = %s (%v), want %s (%v)",
					k, i, top[i], top[i].Weight(), want[i], want[i].Weight())
			}
		}
	}
	if _, err := tree.TopPaths(0); err == nil {
		t.Error("TopPaths(0) succeeded")
	}
}

// TestTopPathsRandomAgreement: on random topologies and matrices, the
// pruned top-k search agrees with full enumeration.
func TestTopPathsRandomAgreement(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		sys, err := model.RandomSystem(model.GenOptions{
			Modules: 4 + int(seed%4), MaxPorts: 2, FeedbackProb: 0.3, Seed: seed * 997,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		m := NewMatrix(sys)
		for _, pv := range m.Pairs() {
			if err := m.Set(pv.Pair.Module, pv.Pair.In, pv.Pair.Out, rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		for _, output := range sys.SystemOutputs() {
			tree, err := BacktrackTree(m, output)
			if err != nil {
				t.Fatal(err)
			}
			ranked := tree.RankedPaths()
			for _, k := range []int{1, 3, len(ranked)} {
				if k < 1 {
					continue
				}
				top, err := tree.TopPaths(k)
				if err != nil {
					t.Fatal(err)
				}
				wantLen := k
				if wantLen > len(ranked) {
					wantLen = len(ranked)
				}
				var want, got []string
				for i := 0; i < wantLen; i++ {
					want = append(want, ranked[i].String())
					got = append(got, top[i].String())
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("seed %d output %s k=%d:\n got %v\nwant %v", seed, output, k, got, want)
				}
			}
		}
	}
}

func TestApplyWrapper(t *testing.T) {
	m := exampleMatrix(t)
	wrapped, err := ApplyWrapper(m, "B", 0.5)
	if err != nil {
		t.Fatalf("ApplyWrapper: %v", err)
	}
	// B's pairs halve; others stay.
	v, err := wrapped.Value("B", 1, 2)
	if err != nil || !almostEqual(v, 0.3) {
		t.Errorf("wrapped B(1,2) = %v, want 0.3", v)
	}
	v, err = wrapped.Value("E", 1, 1)
	if err != nil || !almostEqual(v, 0.9) {
		t.Errorf("wrapped E(1,1) = %v, want unchanged 0.9", v)
	}
	// The original is untouched.
	v, err = m.Value("B", 1, 2)
	if err != nil || !almostEqual(v, 0.6) {
		t.Errorf("original B(1,2) = %v, want 0.6", v)
	}
	if _, err := ApplyWrapper(m, "B", 1.5); err == nil {
		t.Error("factor > 1 accepted")
	}
	if _, err := ApplyWrapper(m, "ZZ", 0.5); err == nil {
		t.Error("unknown module accepted")
	}
}

func TestEvaluateWrapper(t *testing.T) {
	m := exampleMatrix(t)
	effects, err := EvaluateWrapper(m, "B", 0)
	if err != nil {
		t.Fatalf("EvaluateWrapper: %v", err)
	}
	if len(effects) != 1 {
		t.Fatalf("effects = %d, want 1", len(effects))
	}
	e := effects[0]
	if e.Output != "sysout" || e.Module != "B" {
		t.Errorf("effect metadata wrong: %+v", e)
	}
	// A perfect wrapper on B removes the three b2-branch paths
	// (0.432 + 0.243 + 0.108); the extC (0.14) and extE (0.2) paths
	// survive.
	if !almostEqual(e.Before, 0.432+0.243+0.108+0.14+0.2) {
		t.Errorf("before = %v", e.Before)
	}
	if !almostEqual(e.After, 0.34) {
		t.Errorf("after = %v, want 0.34", e.After)
	}
	wantReduction := 1 - 0.34/e.Before
	if !almostEqual(e.Reduction(), wantReduction) {
		t.Errorf("Reduction() = %v, want %v", e.Reduction(), wantReduction)
	}
	// Zero-before edge case.
	zero := WrapperEffect{Before: 0, After: 0}
	if zero.Reduction() != 0 {
		t.Errorf("zero-before reduction = %v", zero.Reduction())
	}
}
