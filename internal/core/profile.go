package core

import (
	"fmt"
	"sort"
)

// WeightedPath is a propagation path whose weight has been adjusted
// with the error-occurrence probability of its source signal — the P'
// of the paper's Section 4.2: "If the probability of an error
// appearing on I^A_1 is Pr(A_1), then P can be adjusted with this
// factor."
type WeightedPath struct {
	Path Path
	// SourceProb is the assumed probability of an error appearing on
	// the path's source (leaf) signal.
	SourceProb float64
	// Adjusted is SourceProb × the path weight.
	Adjusted float64
}

// OutputErrorProfile combines the backtrack tree of a system output
// with per-input error-occurrence probabilities, producing the
// adjusted path probabilities P' and their sum — a comparative index
// of how exposed the output is to external errors under the assumed
// error model. Feedback paths carry no external source and are
// excluded; inputs missing from prob default to probability zero.
//
// The sum is a union-bound style index for relative comparison (of
// outputs, or of design alternatives), not an exact failure
// probability — path events are not disjoint.
func OutputErrorProfile(m *Matrix, output string, prob map[string]float64) (float64, []WeightedPath, error) {
	for sig, p := range prob {
		if p < 0 || p > 1 {
			return 0, nil, fmt.Errorf("core: probability %v for input %q out of [0,1]", p, sig)
		}
		if !m.System().IsSystemInput(sig) {
			return 0, nil, fmt.Errorf("core: %q is not a system input of %s", sig, m.System().Name())
		}
	}
	tree, err := BacktrackTree(m, output)
	if err != nil {
		return 0, nil, err
	}
	var out []WeightedPath
	total := 0.0
	for _, p := range tree.Paths() {
		if p.LeafKind != KindTerminal {
			continue // feedback break-points have no external source
		}
		sp := prob[p.Leaf()]
		wp := WeightedPath{Path: p, SourceProb: sp, Adjusted: p.AdjustedWeight(sp)}
		total += wp.Adjusted
		out = append(out, wp)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Adjusted != out[b].Adjusted {
			return out[a].Adjusted > out[b].Adjusted
		}
		return out[a].Path.String() < out[b].Path.String()
	})
	return total, out, nil
}

// InputCriticality ranks system inputs by the total adjusted weight of
// the paths from each input to the given output, under uniform unit
// error probability: "which external data source threatens this
// output most". It is the per-input marginal of OutputErrorProfile.
func InputCriticality(m *Matrix, output string) ([]RankedSignal, error) {
	tree, err := BacktrackTree(m, output)
	if err != nil {
		return nil, err
	}
	sums := make(map[string]float64)
	for _, in := range m.System().SystemInputs() {
		sums[in] = 0
	}
	for _, p := range tree.Paths() {
		if p.LeafKind != KindTerminal {
			continue
		}
		sums[p.Leaf()] += p.Weight()
	}
	out := make([]RankedSignal, 0, len(sums))
	for sig, w := range sums {
		out = append(out, RankedSignal{Signal: sig, Score: w})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Signal < out[b].Signal
	})
	return out, nil
}
