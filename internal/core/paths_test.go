package core

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"propane/internal/model"
)

func TestBacktrackPathsAndWeights(t *testing.T) {
	m := exampleMatrix(t)
	tree, err := BacktrackTree(m, "sysout")
	if err != nil {
		t.Fatalf("BacktrackTree: %v", err)
	}
	paths := tree.Paths()
	if len(paths) != 5 {
		t.Fatalf("len(paths) = %d, want 5", len(paths))
	}
	// Hand-computed path weights (see exampleMatrix values).
	wantWeights := map[string]float64{
		"sysout <- b2 <- a1 <- extA":            0.9 * 0.6 * 0.8,
		"sysout <- b2 <- bfb <- a1 <- extA":     0.9 * 0.3 * 0.5 * 0.8,
		"sysout <- b2 <- bfb <- bfb (feedback)": 0.9 * 0.3 * 0.9,
		"sysout <- d1 <- c1 <- extC":            0.5 * 0.4 * 0.7,
		"sysout <- extE":                        0.2,
	}
	for _, p := range paths {
		want, ok := wantWeights[p.String()]
		if !ok {
			t.Errorf("unexpected path %q", p.String())
			continue
		}
		if !almostEqual(p.Weight(), want) {
			t.Errorf("path %q weight = %v, want %v", p.String(), p.Weight(), want)
		}
		delete(wantWeights, p.String())
	}
	for s := range wantWeights {
		t.Errorf("missing path %q", s)
	}
}

func TestRankedPathsOrder(t *testing.T) {
	m := exampleMatrix(t)
	tree, err := BacktrackTree(m, "sysout")
	if err != nil {
		t.Fatalf("BacktrackTree: %v", err)
	}
	ranked := tree.RankedPaths()
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Weight() < ranked[i].Weight() {
			t.Errorf("ranked paths out of order at %d: %v < %v", i, ranked[i-1].Weight(), ranked[i].Weight())
		}
	}
	if got, want := ranked[0].String(), "sysout <- b2 <- a1 <- extA"; got != want {
		t.Errorf("highest-weight path = %q, want %q", got, want)
	}
}

func TestNonZeroPaths(t *testing.T) {
	m := exampleMatrix(t)
	// Zero out the C->D link: the extC path weight becomes zero.
	if err := m.Set("C", 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	tree, err := BacktrackTree(m, "sysout")
	if err != nil {
		t.Fatalf("BacktrackTree: %v", err)
	}
	nz := tree.NonZeroPaths()
	if len(nz) != 4 {
		t.Fatalf("non-zero paths = %d, want 4", len(nz))
	}
	for _, p := range nz {
		if p.Weight() <= 0 {
			t.Errorf("path %q in NonZeroPaths with weight %v", p.String(), p.Weight())
		}
		if strings.Contains(p.String(), "extC") {
			t.Errorf("zero-weight path %q still present", p.String())
		}
	}
}

func TestPathAccessors(t *testing.T) {
	m := exampleMatrix(t)
	tree, err := BacktrackTree(m, "sysout")
	if err != nil {
		t.Fatalf("BacktrackTree: %v", err)
	}
	var p Path
	for _, cand := range tree.Paths() {
		if cand.String() == "sysout <- b2 <- a1 <- extA" {
			p = cand
			break
		}
	}
	if p.Root != "sysout" {
		t.Fatalf("did not find expected path; root = %q", p.Root)
	}
	if got, want := p.Leaf(), "extA"; got != want {
		t.Errorf("Leaf() = %q, want %q", got, want)
	}
	if got, want := p.PairNotation(), "P^E_{1,1}·P^B_{1,2}·P^A_{1,1}"; got != want {
		t.Errorf("PairNotation() = %q, want %q", got, want)
	}
	// Adjusted weight: Pr(err on extA) * path weight (Section 4.2 P').
	if got, want := p.AdjustedWeight(0.5), 0.5*0.9*0.6*0.8; !almostEqual(got, want) {
		t.Errorf("AdjustedWeight(0.5) = %v, want %v", got, want)
	}
	// Empty path edge case.
	empty := Path{Root: "x"}
	if empty.Leaf() != "x" {
		t.Errorf("empty path Leaf() = %q, want x", empty.Leaf())
	}
	if !almostEqual(empty.Weight(), 1) {
		t.Errorf("empty path Weight() = %v, want 1", empty.Weight())
	}
}

func TestSignalsOnEveryPath(t *testing.T) {
	m := exampleMatrix(t)
	tree, err := BacktrackTree(m, "sysout")
	if err != nil {
		t.Fatalf("BacktrackTree: %v", err)
	}
	// Over all five sysout paths no single signal is shared.
	if got := SignalsOnEveryPath(tree.Paths()); len(got) != 0 {
		t.Errorf("SignalsOnEveryPath(all) = %v, want empty", got)
	}
	// Restricting to the b2 branch, b2 is on every path.
	var b2paths []Path
	for _, p := range tree.Paths() {
		if strings.Contains(p.String(), "b2") {
			b2paths = append(b2paths, p)
		}
	}
	got := SignalsOnEveryPath(b2paths)
	if !reflect.DeepEqual(got, []string{"b2"}) {
		t.Errorf("SignalsOnEveryPath(b2 branch) = %v, want [b2]", got)
	}
	if got := SignalsOnEveryPath(nil); got != nil {
		t.Errorf("SignalsOnEveryPath(nil) = %v, want nil", got)
	}
}

func TestFormatPathTable(t *testing.T) {
	m := exampleMatrix(t)
	tree, err := BacktrackTree(m, "sysout")
	if err != nil {
		t.Fatalf("BacktrackTree: %v", err)
	}
	out := FormatPathTable(tree.RankedPaths())
	if !strings.Contains(out, "sysout <- b2 <- a1 <- extA") {
		t.Errorf("table missing expected path:\n%s", out)
	}
	if !strings.Contains(out, "P^E_{1,1}") {
		t.Errorf("table missing pair notation:\n%s", out)
	}
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got != 5 {
		t.Errorf("table has %d lines, want 5:\n%s", got, out)
	}
}

// TestPathWeightBounds property: with permeabilities in [0,1], every
// path weight lies in [0,1] and never exceeds the minimum edge weight.
func TestPathWeightBounds(t *testing.T) {
	sys := model.PaperExampleSystem()
	prop := func(raw []float64) bool {
		m := NewMatrix(sys)
		i := 0
		for _, pv := range m.Pairs() {
			v := 0.5
			if i < len(raw) {
				v = math.Abs(raw[i])
				v -= math.Floor(v)
			}
			if err := m.Set(pv.Pair.Module, pv.Pair.In, pv.Pair.Out, v); err != nil {
				return false
			}
			i++
		}
		tree, err := BacktrackTree(m, "sysout")
		if err != nil {
			return false
		}
		for _, p := range tree.Paths() {
			w := p.Weight()
			if w < 0 || w > 1 {
				return false
			}
			minEdge := 1.0
			for _, s := range p.Steps {
				if s.Weight < minEdge {
					minEdge = s.Weight
				}
			}
			if w > minEdge+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
