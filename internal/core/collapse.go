package core

import (
	"fmt"
	"sort"

	"propane/internal/model"
)

// Collapse merges a group of modules into a single composite module,
// deriving its pair permeabilities from the internal propagation
// paths. This implements the hierarchy remark of the paper's Section
// 3: "this system may be seen as a larger component or module in an
// even larger system" — analysis can proceed at a coarser abstraction
// level once a subsystem's permeabilities are known.
//
// The composite module's inputs are the group's boundary inputs
// (signals consumed inside the group but driven outside it or
// externally) and its outputs are the boundary outputs (signals driven
// inside the group and consumed outside it or exported as system
// outputs). The permeability of a composite pair (i, o) combines the
// weights of all internal propagation paths from input i to output o
// under an independence assumption:
//
//	P(i,o) = 1 - Π_paths (1 - weight(path)),
//
// with module-local feedback unrolled once, exactly as in the
// backtrack-tree construction. Paths terminating in feedback
// break-points carry no boundary source and are excluded.
func Collapse(m *Matrix, group []string, newName string) (*Matrix, error) {
	sys := m.System()
	if len(group) == 0 {
		return nil, fmt.Errorf("core: empty module group")
	}
	inGroup := make(map[string]bool, len(group))
	for _, name := range group {
		if _, err := sys.Module(name); err != nil {
			return nil, err
		}
		if inGroup[name] {
			return nil, fmt.Errorf("core: module %q listed twice in group", name)
		}
		inGroup[name] = true
	}
	for _, name := range sys.ModuleNames() {
		if name == newName && !inGroup[name] {
			return nil, fmt.Errorf("core: composite name %q collides with an existing module", newName)
		}
	}

	subMatrix, err := subsystemMatrix(m, inGroup, sys)
	if err != nil {
		return nil, err
	}
	subSys := subMatrix.System()

	// Composite ports: boundary inputs and outputs, sorted by signal.
	boundaryIn := subSys.SystemInputs()
	boundaryOut := subSys.SystemOutputs()

	// Derive composite permeabilities from the subsystem's backtrack
	// forest.
	composite := make(map[[2]string]float64)
	for _, out := range boundaryOut {
		tree, err := BacktrackTree(subMatrix, out)
		if err != nil {
			return nil, err
		}
		survive := make(map[string]float64) // input -> Π(1-w)
		for _, in := range boundaryIn {
			survive[in] = 1
		}
		for _, p := range tree.Paths() {
			if p.LeafKind != KindTerminal {
				continue
			}
			survive[p.Leaf()] *= 1 - p.Weight()
		}
		for _, in := range boundaryIn {
			composite[[2]string{in, out}] = 1 - survive[in]
		}
	}

	// Rebuild the top-level system with the group replaced.
	b := model.NewBuilder(sys.Name() + "+" + newName)
	placed := false
	for _, mod := range sys.Modules() {
		if inGroup[mod.Name] {
			if !placed {
				b.AddModule(newName, boundaryIn, boundaryOut)
				placed = true
			}
			continue
		}
		ins := make([]string, 0, len(mod.Inputs))
		for _, p := range mod.Inputs {
			ins = append(ins, p.Signal)
		}
		outs := make([]string, 0, len(mod.Outputs))
		for _, p := range mod.Outputs {
			outs = append(outs, p.Signal)
		}
		b.AddModule(mod.Name, ins, outs)
	}
	for _, out := range sys.SystemOutputs() {
		b.DeclareSystemOutput(out)
	}
	newSys, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("core: collapsed system invalid: %w", err)
	}

	// Transfer permeabilities: untouched modules keep their values,
	// the composite gets the derived ones.
	out := NewMatrix(newSys)
	for _, pv := range m.Pairs() {
		if inGroup[pv.Pair.Module] {
			continue
		}
		if err := out.Set(pv.Pair.Module, pv.Pair.In, pv.Pair.Out, pv.Value); err != nil {
			return nil, err
		}
	}
	for key, v := range composite {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		if err := out.SetBySignal(newName, key[0], key[1], v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// subsystemMatrix extracts the group as a standalone system with the
// original pair permeabilities. Boundary outputs (driven inside,
// consumed outside or exported) are declared as subsystem outputs.
func subsystemMatrix(m *Matrix, inGroup map[string]bool, sys *model.System) (*Matrix, error) {
	groupNames := make([]string, 0, len(inGroup))
	for _, name := range sys.ModuleNames() {
		if inGroup[name] {
			groupNames = append(groupNames, name)
		}
	}
	sort.Strings(groupNames)

	b := model.NewBuilder("subsystem")
	for _, name := range groupNames {
		mod, err := sys.Module(name)
		if err != nil {
			return nil, err
		}
		ins := make([]string, 0, len(mod.Inputs))
		for _, p := range mod.Inputs {
			ins = append(ins, p.Signal)
		}
		outs := make([]string, 0, len(mod.Outputs))
		for _, p := range mod.Outputs {
			outs = append(outs, p.Signal)
		}
		b.AddModule(name, ins, outs)
	}
	// Boundary outputs: driven by the group, consumed outside it or a
	// system output of the full system.
	for _, name := range groupNames {
		mod, err := sys.Module(name)
		if err != nil {
			return nil, err
		}
		for _, p := range mod.Outputs {
			exported := sys.IsSystemOutput(p.Signal)
			for _, r := range sys.Receivers(p.Signal) {
				if !inGroup[r.Module] {
					exported = true
				}
			}
			if exported {
				b.DeclareSystemOutput(p.Signal)
			}
		}
	}
	subSys, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("core: module group does not form a valid subsystem: %w", err)
	}
	sub := NewMatrix(subSys)
	for _, pv := range m.Pairs() {
		if !inGroup[pv.Pair.Module] {
			continue
		}
		if err := sub.Set(pv.Pair.Module, pv.Pair.In, pv.Pair.Out, pv.Value); err != nil {
			return nil, err
		}
	}
	return sub, nil
}
