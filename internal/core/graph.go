package core

import (
	"fmt"
	"sort"

	"propane/internal/model"
)

// Arc is one weighted arc of the permeability graph (paper Fig. 3).
// For every connection "output k' of module From drives input i of
// module To via signal Signal", the graph carries one arc per
// input/output pair (j, k') of the driving module, weighted with that
// pair's permeability. There may therefore be more arcs between two
// nodes than there are signals between the corresponding modules.
type Arc struct {
	// From is the driving module, To the receiving module. From == To
	// for module-local feedback (e.g. signal i of CALC).
	From, To string
	// Pair is the input/output pair of the driving module whose
	// permeability weights this arc.
	Pair Pair
	// Weight is the permeability value of Pair.
	Weight float64
	// Signal is the signal connecting From's output to To's input.
	Signal string
	// ToInput is the 1-based input index of the receiving module.
	ToInput int
}

// Graph is the permeability graph of a system: one node per module,
// arcs as described on Arc. It is the structure on which the error
// exposure measures (Eqs. 4 and 5) are defined and from which the
// backtrack and trace trees are derived.
type Graph struct {
	matrix   *Matrix
	arcs     []Arc
	incoming map[string][]Arc
	outgoing map[string][]Arc
}

// NewGraph builds the permeability graph for the matrix's system.
func NewGraph(m *Matrix) (*Graph, error) {
	sys := m.System()
	g := &Graph{
		matrix:   m,
		incoming: make(map[string][]Arc),
		outgoing: make(map[string][]Arc),
	}
	for _, mod := range sys.Modules() {
		for _, in := range mod.Inputs {
			drv, driven := sys.Driver(in.Signal)
			if !driven {
				continue // system input: no incoming arc (OB1)
			}
			from, err := sys.Module(drv.Module)
			if err != nil {
				return nil, fmt.Errorf("core: building graph: %w", err)
			}
			for _, j := range from.Inputs {
				pair := Pair{Module: from.Name, In: j.Index, Out: drv.Index}
				arc := Arc{
					From:    from.Name,
					To:      mod.Name,
					Pair:    pair,
					Weight:  m.at(pair),
					Signal:  in.Signal,
					ToInput: in.Index,
				}
				g.arcs = append(g.arcs, arc)
				g.incoming[mod.Name] = append(g.incoming[mod.Name], arc)
				g.outgoing[from.Name] = append(g.outgoing[from.Name], arc)
			}
		}
	}
	return g, nil
}

// Matrix returns the permeability matrix the graph was built from.
func (g *Graph) Matrix() *Matrix { return g.matrix }

// Arcs returns all arcs, ordered by receiving module (system order),
// then receiving input index, then driving pair.
func (g *Graph) Arcs() []Arc {
	out := make([]Arc, len(g.arcs))
	copy(out, g.arcs)
	order := make(map[string]int)
	for i, name := range g.matrix.System().ModuleNames() {
		order[name] = i
	}
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if order[x.To] != order[y.To] {
			return order[x.To] < order[y.To]
		}
		if x.ToInput != y.ToInput {
			return x.ToInput < y.ToInput
		}
		if x.Pair.In != y.Pair.In {
			return x.Pair.In < y.Pair.In
		}
		return x.Pair.Out < y.Pair.Out
	})
	return out
}

// Incoming returns the arcs entering the named module.
func (g *Graph) Incoming(module string) []Arc {
	arcs := g.incoming[module]
	out := make([]Arc, len(arcs))
	copy(out, arcs)
	return out
}

// Outgoing returns the arcs leaving the named module.
func (g *Graph) Outgoing(module string) []Arc {
	arcs := g.outgoing[module]
	out := make([]Arc, len(arcs))
	copy(out, arcs)
	return out
}

// Exposure computes the error exposure X^M (Eq. 4, the mean weight of
// the module's incoming arcs) and the non-weighted error exposure X̄^M
// (Eq. 5, their sum). ok is false when the module has no incoming
// arcs, i.e. it only receives system input signals; the paper's OB1
// notes such modules have no exposure values and their exposure is
// instead governed by the external error-occurrence probabilities.
func (g *Graph) Exposure(module string) (exposure, nonWeighted float64, ok bool) {
	arcs := g.incoming[module]
	if len(arcs) == 0 {
		return 0, 0, false
	}
	sum := 0.0
	for _, a := range arcs {
		sum += a.Weight
	}
	return sum / float64(len(arcs)), sum, true
}

// moduleOutputDriver resolves the driving endpoint for a signal and
// reports whether it exists (false for system inputs).
func moduleOutputDriver(sys *model.System, signal string) (model.Endpoint, bool) {
	return sys.Driver(signal)
}
