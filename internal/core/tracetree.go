package core

import (
	"fmt"

	"propane/internal/model"
)

// TraceTree constructs the trace tree for a system input signal
// following steps B1–B4 of Section 4.2: the root represents the system
// input, leaves represent system outputs (or feedback break-points),
// and intermediate nodes represent internal signals. Each arc carries
// the permeability value P^M_{i,k} of the receiving module's pair.
//
// When a signal fans out to several module inputs, children are
// generated for every receiving input, so the tree covers every
// forward propagation route.
func TraceTree(m *Matrix, input string) (*Tree, error) {
	sys := m.System()
	if !sys.IsSystemInput(input) {
		return nil, fmt.Errorf("core: %q is not a system input of %s", input, sys.Name())
	}
	root := &Node{Signal: input, Kind: KindRoot}
	visited := map[model.Endpoint]bool{}
	if err := expandTrace(m, root, visited); err != nil {
		return nil, err
	}
	return &Tree{Root: root, Backtrack: false}, nil
}

// expandTrace generates the children of node per step B2 (one child
// per output of each receiving module) and recurses per step B3.
// visited holds the module inputs already consumed along the path from
// the root, so each feedback loop is followed exactly once: when an
// output signal feeds an input already on the path, the child becomes
// a feedback leaf instead of recursing.
func expandTrace(m *Matrix, node *Node, visited map[model.Endpoint]bool) error {
	sys := m.System()
	for _, recv := range sys.Receivers(node.Signal) {
		if visited[recv] {
			// This receiving input is already on the path: the
			// propagation recursion through the loop stops here. The
			// node itself was already emitted by the caller; nothing
			// further is generated for this receiver.
			continue
		}
		visited[recv] = true
		mod, err := sys.Module(recv.Module)
		if err != nil {
			delete(visited, recv)
			return err
		}
		for _, out := range mod.Outputs {
			pair := Pair{Module: mod.Name, In: recv.Index, Out: out.Index}
			child := &Node{
				Signal: out.Signal,
				Pair:   pair,
				Weight: m.at(pair),
			}
			node.Children = append(node.Children, child)

			switch {
			case sys.IsSystemOutput(out.Signal):
				// Step B3: system output signals become leaves.
				child.Kind = KindTerminal
			case allReceiversVisited(sys, out.Signal, visited):
				// Every consumer of this signal is already on the
				// path: following it further would re-enter a loop a
				// second time, so it becomes a feedback leaf.
				child.Kind = KindFeedback
			default:
				child.Kind = KindInternal
				if err := expandTrace(m, child, visited); err != nil {
					delete(visited, recv)
					return err
				}
			}
		}
		delete(visited, recv)
	}
	return nil
}

// allReceiversVisited reports whether every module input consuming the
// signal is already on the current path.
func allReceiversVisited(sys *model.System, signal string, visited map[model.Endpoint]bool) bool {
	receivers := sys.Receivers(signal)
	if len(receivers) == 0 {
		return false
	}
	for _, r := range receivers {
		if !visited[r] {
			return false
		}
	}
	return true
}

// TraceForest builds one trace tree per system input (step B4), keyed
// by input signal name.
func TraceForest(m *Matrix) (map[string]*Tree, error) {
	forest := make(map[string]*Tree)
	for _, in := range m.System().SystemInputs() {
		t, err := TraceTree(m, in)
		if err != nil {
			return nil, err
		}
		forest[in] = t
	}
	return forest, nil
}
