package core

import (
	"fmt"
)

// PredictEndToEnd estimates the probability that an error on a system
// input reaches a system output by composing pair permeabilities along
// the trace tree: every root-to-leaf path to that output contributes
// its weight, and paths are combined under an independence assumption,
//
//	P(input ⇝ output) ≈ 1 - Π_paths (1 - weight(path)).
//
// This is the compositional prediction the permeability framework
// makes about end-to-end behaviour; comparing it against the directly
// measured propagation fraction of a fault-injection campaign
// (campaign.Result.Locations) cross-validates the framework itself.
// Feedback break-point leaves do not terminate at the output and are
// ignored.
func PredictEndToEnd(m *Matrix, input, output string) (float64, error) {
	sys := m.System()
	if !sys.IsSystemInput(input) {
		return 0, fmt.Errorf("core: %q is not a system input of %s", input, sys.Name())
	}
	if !sys.IsSystemOutput(output) {
		return 0, fmt.Errorf("core: %q is not a system output of %s", output, sys.Name())
	}
	tree, err := TraceTree(m, input)
	if err != nil {
		return 0, err
	}
	survive := 1.0
	for _, p := range tree.Paths() {
		if p.LeafKind != KindTerminal || p.Leaf() != output {
			continue
		}
		survive *= 1 - p.Weight()
	}
	return 1 - survive, nil
}

// EndToEndPrediction pairs a system input with its predicted
// propagation probability to a given output.
type EndToEndPrediction struct {
	Input     string
	Output    string
	Predicted float64
}

// PredictAllEndToEnd computes PredictEndToEnd for every system input
// against one output, in sorted input order.
func PredictAllEndToEnd(m *Matrix, output string) ([]EndToEndPrediction, error) {
	var out []EndToEndPrediction
	for _, in := range m.System().SystemInputs() {
		p, err := PredictEndToEnd(m, in, output)
		if err != nil {
			return nil, err
		}
		out = append(out, EndToEndPrediction{Input: in, Output: output, Predicted: p})
	}
	return out, nil
}
