package core

import (
	"reflect"
	"strings"
	"testing"
)

func TestAdvise(t *testing.T) {
	m := exampleMatrix(t)
	adv, err := Advise(m)
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}

	// EDM module ranking by non-weighted exposure: B(2.2) > E(1.3) > D(0.7).
	wantEDM := []string{"B", "E", "D"}
	var gotEDM []string
	for _, rm := range adv.EDMModules {
		gotEDM = append(gotEDM, rm.Module)
	}
	if !reflect.DeepEqual(gotEDM, wantEDM) {
		t.Errorf("EDMModules = %v, want %v", gotEDM, wantEDM)
	}

	// ERM module ranking by non-weighted relative permeability:
	// B(2.3) > E(1.6) > A(0.8) > C(0.7) > D(0.4).
	wantERM := []string{"B", "E", "A", "C", "D"}
	var gotERM []string
	for _, rm := range adv.ERMModules {
		gotERM = append(gotERM, rm.Module)
	}
	if !reflect.DeepEqual(gotERM, wantERM) {
		t.Errorf("ERMModules = %v, want %v", gotERM, wantERM)
	}

	// Barrier modules receive system inputs: A (extA), C (extC), E (extE).
	if !reflect.DeepEqual(adv.BarrierModules, []string{"A", "C", "E"}) {
		t.Errorf("BarrierModules = %v, want [A C E]", adv.BarrierModules)
	}

	// Top EDM signal: sysout (X=1.6), then bfb (1.4).
	if len(adv.EDMSignals) < 2 {
		t.Fatalf("EDMSignals too short: %v", adv.EDMSignals)
	}
	if adv.EDMSignals[0].Signal != "sysout" || adv.EDMSignals[1].Signal != "bfb" {
		t.Errorf("top EDM signals = %v, want sysout then bfb", adv.EDMSignals[:2])
	}

	// No signal lies on every sysout path in this topology.
	if len(adv.CriticalSignals) != 0 {
		t.Errorf("CriticalSignals = %v, want empty", adv.CriticalSignals)
	}
}

func TestAdviseCriticalAndLowExposure(t *testing.T) {
	// Chain topology: every path to out passes through mid; and the
	// dead module's output has zero exposure.
	m := exampleMatrix(t)
	// Zero the producers of c1 and d1 (like the paper's PRES_S, whose
	// zero permeability gives InValue zero exposure), and the direct
	// extE pair, so only the b2 chain carries non-zero paths.
	for _, z := range []struct {
		mod     string
		in, out int
	}{{"C", 1, 1}, {"D", 1, 1}, {"E", 3, 1}} {
		if err := m.Set(z.mod, z.in, z.out, 0); err != nil {
			t.Fatal(err)
		}
	}
	adv, err := Advise(m)
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	// All remaining non-zero paths run through b2.
	found := false
	for _, s := range adv.CriticalSignals {
		if s == "b2" {
			found = true
		}
	}
	if !found {
		t.Errorf("CriticalSignals = %v, want to contain b2", adv.CriticalSignals)
	}
	// d1 and c1 now have zero exposure: flagged as poor EDM locations.
	wantLow := map[string]bool{"c1": true, "d1": true}
	for _, s := range adv.LowExposureSignals {
		delete(wantLow, s)
	}
	for s := range wantLow {
		t.Errorf("LowExposureSignals missing %s (got %v)", s, adv.LowExposureSignals)
	}
}

func TestAdviceSummary(t *testing.T) {
	m := exampleMatrix(t)
	adv, err := Advise(m)
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	s := adv.Summary()
	for _, want := range []string{"EDM module candidates", "ERM module candidates", "Barrier modules", "sysout"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary() missing %q:\n%s", want, s)
		}
	}
}
