package core

import (
	"testing"

	"propane/internal/model"
)

func TestSignalExposures(t *testing.T) {
	m := exampleMatrix(t)
	exposures, err := SignalExposures(m)
	if err != nil {
		t.Fatalf("SignalExposures: %v", err)
	}
	got := make(map[string]SignalExposure, len(exposures))
	for _, se := range exposures {
		got[se.Signal] = se
	}
	// Hand-computed S_p sums (see exampleMatrix and the backtrack tree
	// of sysout). Signal bfb generates two nodes; its arcs B(1,1) and
	// B(2,1) are counted once each (Eq. 6 uniqueness).
	want := map[string]struct {
		exposure float64
		arcs     int
	}{
		"sysout": {0.9 + 0.5 + 0.2, 3},
		"b2":     {0.6 + 0.3, 2},
		"bfb":    {0.5 + 0.9, 2},
		"a1":     {0.8, 1},
		"d1":     {0.4, 1},
		"c1":     {0.7, 1},
		"extA":   {0, 0},
		"extC":   {0, 0},
		"extE":   {0, 0},
	}
	if len(got) != len(want) {
		t.Errorf("got %d signals, want %d: %v", len(got), len(want), exposures)
	}
	for sig, w := range want {
		se, ok := got[sig]
		if !ok {
			t.Errorf("missing exposure for %s", sig)
			continue
		}
		if !almostEqual(se.Exposure, w.exposure) {
			t.Errorf("X^%s = %v, want %v", sig, se.Exposure, w.exposure)
		}
		if se.Arcs != w.arcs {
			t.Errorf("arcs(%s) = %d, want %d", sig, se.Arcs, w.arcs)
		}
	}
	// Result must be sorted by decreasing exposure.
	for i := 1; i < len(exposures); i++ {
		if exposures[i-1].Exposure < exposures[i].Exposure {
			t.Errorf("exposures out of order at %d", i)
		}
	}
}

func TestSignalExposureOf(t *testing.T) {
	m := exampleMatrix(t)
	x, err := SignalExposureOf(m, "bfb")
	if err != nil {
		t.Fatalf("SignalExposureOf: %v", err)
	}
	if !almostEqual(x, 1.4) {
		t.Errorf("X^bfb = %v, want 1.4", x)
	}
	x, err = SignalExposureOf(m, "never-in-tree")
	if err != nil || x != 0 {
		t.Errorf("SignalExposureOf(unknown) = %v, %v; want 0, nil", x, err)
	}
}

// TestSignalExposureDeterministic pins the bit-level reproducibility
// of X^S: the arc weights below sum order-dependently under float64
// (0.1+0.2+0.3 != 0.3+0.2+0.1), so summing in map-iteration order
// would let the low bits of the exposure vary between calls — enough
// to flip a value sitting on a display-rounding boundary between
// otherwise identical campaign reports. The sum must be performed in
// a fixed arc order and therefore be bit-identical on every call.
func TestSignalExposureDeterministic(t *testing.T) {
	sys, err := model.NewBuilder("fan").
		AddModule("SRC", []string{"ext"}, []string{"s"}).
		AddModule("F", []string{"s"}, []string{"o1", "o2", "o3"}).
		AddModule("J", []string{"o1", "o2", "o3"}, []string{"out"}).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m := NewMatrix(sys)
	for _, set := range []struct {
		mod     string
		in, out int
		v       float64
	}{
		{"SRC", 1, 1, 0.5},
		{"F", 1, 1, 0.9}, {"F", 1, 2, 0.9}, {"F", 1, 3, 0.9},
		{"J", 1, 1, 0.1}, {"J", 2, 1, 0.2}, {"J", 3, 1, 0.3},
	} {
		if err := m.Set(set.mod, set.in, set.out, set.v); err != nil {
			t.Fatal(err)
		}
	}
	// Signal s generates the three J arcs {0.1, 0.2, 0.3} in its S_p
	// set (via o1..o3) plus the three F arcs.
	first, err := SignalExposures(m)
	if err != nil {
		t.Fatalf("SignalExposures: %v", err)
	}
	for i := 0; i < 200; i++ {
		again, err := SignalExposures(m)
		if err != nil {
			t.Fatalf("SignalExposures: %v", err)
		}
		for j, se := range again {
			if se != first[j] {
				t.Fatalf("call %d: exposure %d = %+v, first call %+v — X^S is not bit-deterministic",
					i, j, se, first[j])
			}
		}
	}
}

// TestSignalExposureUniqueness builds a diamond topology where one
// signal is consumed by two modules whose outputs rejoin; the shared
// upstream arcs must be counted once even though the signal generates
// multiple backtrack nodes.
func TestSignalExposureUniqueness(t *testing.T) {
	sys, err := model.NewBuilder("diamond").
		AddModule("SRC", []string{"ext"}, []string{"s"}).
		AddModule("L", []string{"s"}, []string{"ls"}).
		AddModule("R", []string{"s"}, []string{"rs"}).
		AddModule("J", []string{"ls", "rs"}, []string{"out"}).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m := NewMatrix(sys)
	for _, set := range []struct {
		mod     string
		in, out int
		v       float64
	}{
		{"SRC", 1, 1, 0.5}, {"L", 1, 1, 0.6}, {"R", 1, 1, 0.7},
		{"J", 1, 1, 0.8}, {"J", 2, 1, 0.9},
	} {
		if err := m.Set(set.mod, set.in, set.out, set.v); err != nil {
			t.Fatal(err)
		}
	}
	// Signal s appears as a node under both the ls and rs branches;
	// each node has the single arc SRC(1,1)=0.5, counted once.
	x, err := SignalExposureOf(m, "s")
	if err != nil {
		t.Fatalf("SignalExposureOf: %v", err)
	}
	if !almostEqual(x, 0.5) {
		t.Errorf("X^s = %v, want 0.5 (unique-arc counting)", x)
	}
}
