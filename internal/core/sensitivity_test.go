package core

import (
	"testing"

	"propane/internal/model"
)

func sensitivityMap(t *testing.T, m *Matrix, output string) map[Pair]PairSensitivity {
	t.Helper()
	list, err := PathSensitivities(m, output)
	if err != nil {
		t.Fatalf("PathSensitivities: %v", err)
	}
	out := make(map[Pair]PairSensitivity, len(list))
	for _, ps := range list {
		out[ps.Pair] = ps
	}
	return out
}

func TestPathSensitivitiesHandComputed(t *testing.T) {
	m := exampleMatrix(t)
	s := sensitivityMap(t, m, "sysout")

	// E(3,1) (extE -> sysout) lies on one single-edge path; the
	// product of the other weights is the empty product 1.
	if got := s[Pair{"E", 3, 1}]; !almostEqual(got.Sensitivity, 1) || got.PathCount != 1 {
		t.Errorf("sens E(3,1) = %+v, want 1.0 over 1 path", got)
	}

	// C(1,1) lies on the chain extC -> c1 -> d1 -> sysout:
	// sensitivity = P^D(1,1)·P^E(2,1) = 0.4·0.5.
	if got := s[Pair{"C", 1, 1}]; !almostEqual(got.Sensitivity, 0.2) || got.PathCount != 1 {
		t.Errorf("sens C(1,1) = %+v, want 0.2 over 1 path", got)
	}

	// E(1,1) (b2 -> sysout) lies on all three b2-branch paths:
	//   0.6·0.8 + 0.3·0.5·0.8 + 0.3·0.9 = 0.48 + 0.12 + 0.27 = 0.87.
	if got := s[Pair{"E", 1, 1}]; !almostEqual(got.Sensitivity, 0.87) || got.PathCount != 3 {
		t.Errorf("sens E(1,1) = %+v, want 0.87 over 3 paths", got)
	}

	// A(1,1) lies on two paths: 0.9·0.6 + 0.9·0.3·0.5 = 0.675.
	if got := s[Pair{"A", 1, 1}]; !almostEqual(got.Sensitivity, 0.675) || got.PathCount != 2 {
		t.Errorf("sens A(1,1) = %+v, want 0.675 over 2 paths", got)
	}
}

func TestPathSensitivitiesZeroWeightPairStillRanked(t *testing.T) {
	// Even a pair with zero current permeability has a meaningful
	// sensitivity (the exposure it would create if it opened up).
	m := exampleMatrix(t)
	if err := m.Set("C", 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	s := sensitivityMap(t, m, "sysout")
	if got := s[Pair{"C", 1, 1}]; !almostEqual(got.Sensitivity, 0.2) {
		t.Errorf("zeroed pair sensitivity = %v, want 0.2", got.Sensitivity)
	}
}

func TestPathSensitivitiesSorted(t *testing.T) {
	m := exampleMatrix(t)
	list, err := PathSensitivities(m, "sysout")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 10 {
		t.Fatalf("got %d sensitivities, want all 10 pairs", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].Sensitivity < list[i].Sensitivity {
			t.Errorf("sensitivities out of order at %d", i)
		}
	}
	// Pairs not on any path to sysout have zero sensitivity... in this
	// topology every pair reaches sysout, so the tail is non-zero.
	if list[len(list)-1].Sensitivity <= 0 {
		t.Errorf("unexpected zero tail: %+v", list[len(list)-1])
	}
}

func TestPathSensitivitiesErrors(t *testing.T) {
	m := exampleMatrix(t)
	if _, err := PathSensitivities(m, "extA"); err == nil {
		t.Error("PathSensitivities on non-output succeeded")
	}
}

// TestSensitivityPredictsWeightChange: nudging one pair's permeability
// changes the total path weight by sensitivity × delta (linearity in
// each coordinate).
func TestSensitivityPredictsWeightChange(t *testing.T) {
	m := exampleMatrix(t)
	total := func(m *Matrix) float64 {
		tree, err := BacktrackTree(m, "sysout")
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, p := range tree.Paths() {
			sum += p.Weight()
		}
		return sum
	}
	s := sensitivityMap(t, m, "sysout")
	base := total(m)
	const delta = 0.05
	target := Pair{"B", 1, 2}
	v, err := m.Value("B", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set("B", 1, 2, v+delta); err != nil {
		t.Fatal(err)
	}
	got := total(m) - base
	want := s[target].Sensitivity * delta
	if !almostEqual(got, want) {
		t.Errorf("weight change = %v, sensitivity predicts %v", got, want)
	}
}

func TestOutputErrorProfile(t *testing.T) {
	m := exampleMatrix(t)
	prob := map[string]float64{"extA": 0.5, "extC": 0.1, "extE": 1.0}
	total, paths, err := OutputErrorProfile(m, "sysout", prob)
	if err != nil {
		t.Fatalf("OutputErrorProfile: %v", err)
	}
	// Terminal paths: extA direct (0.432·0.5), extA via bfb (0.108·0.5),
	// extC (0.14·0.1), extE (0.2·1.0). Feedback path excluded.
	if len(paths) != 4 {
		t.Fatalf("weighted paths = %d, want 4 (feedback excluded)", len(paths))
	}
	want := 0.432*0.5 + 0.108*0.5 + 0.14*0.1 + 0.2
	if !almostEqual(total, want) {
		t.Errorf("total = %v, want %v", total, want)
	}
	// Sorted by adjusted weight descending; top is the direct extA path.
	if !almostEqual(paths[0].Adjusted, 0.216) {
		t.Errorf("top adjusted = %v, want 0.216", paths[0].Adjusted)
	}
	// Unknown inputs default to probability zero.
	total0, _, err := OutputErrorProfile(m, "sysout", nil)
	if err != nil || !almostEqual(total0, 0) {
		t.Errorf("profile with no probabilities = %v, %v; want 0", total0, err)
	}
}

func TestOutputErrorProfileValidation(t *testing.T) {
	m := exampleMatrix(t)
	if _, _, err := OutputErrorProfile(m, "sysout", map[string]float64{"extA": 1.5}); err == nil {
		t.Error("profile with probability > 1 succeeded")
	}
	if _, _, err := OutputErrorProfile(m, "sysout", map[string]float64{"a1": 0.5}); err == nil {
		t.Error("profile with non-input signal succeeded")
	}
	if _, _, err := OutputErrorProfile(m, "b2", nil); err == nil {
		t.Error("profile on non-output succeeded")
	}
}

func TestInputCriticality(t *testing.T) {
	m := exampleMatrix(t)
	ranked, err := InputCriticality(m, "sysout")
	if err != nil {
		t.Fatalf("InputCriticality: %v", err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked inputs = %d, want 3", len(ranked))
	}
	// extA: 0.432+0.108 = 0.54; extE: 0.2; extC: 0.14.
	if ranked[0].Signal != "extA" || !almostEqual(ranked[0].Score, 0.54) {
		t.Errorf("top input = %+v, want extA/0.54", ranked[0])
	}
	if ranked[1].Signal != "extE" || ranked[2].Signal != "extC" {
		t.Errorf("ranking = %v, want extE then extC", ranked)
	}
	if _, err := InputCriticality(m, "nope"); err == nil {
		t.Error("InputCriticality on non-output succeeded")
	}
}

// TestInputCriticalityIsolatedInput: an input with no path to the
// output ranks last with zero score.
func TestInputCriticalityIsolatedInput(t *testing.T) {
	sys, err := model.NewBuilder("split").
		AddModule("M", []string{"in1"}, []string{"out1"}).
		AddModule("N", []string{"in2"}, []string{"out2"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatrix(sys)
	if err := m.Set("M", 1, 1, 0.9); err != nil {
		t.Fatal(err)
	}
	ranked, err := InputCriticality(m, "out1")
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 || ranked[0].Signal != "in1" || ranked[1].Score != 0 {
		t.Errorf("ranking = %v, want in1 first, in2 zero", ranked)
	}
}
