package core

import (
	"fmt"
	"sort"
)

// RankedModule is a module with the score that ranked it.
type RankedModule struct {
	Module string
	Score  float64
}

// RankedSignal is a signal with the score that ranked it.
type RankedSignal struct {
	Signal string
	Score  float64
}

// Advice is the output of the Section 5 placement analysis: ranked
// candidate locations for error detection mechanisms (EDMs) and error
// recovery mechanisms (ERMs), plus the structural observations the
// paper derives in Section 8.
type Advice struct {
	// EDMModules ranks modules by non-weighted error exposure X̄^M
	// (Eq. 5), descending: "the higher the error exposure values of a
	// module, the higher the probability that it will be subjected to
	// errors propagating through the system ... it may be more cost
	// effective to place EDM's in those modules". Modules without
	// exposure values (only system inputs) are excluded; see
	// BarrierModules.
	EDMModules []RankedModule
	// EDMSignals ranks signals by signal error exposure X^S (Eq. 6),
	// descending — the finer-granularity view for placing EDMs.
	EDMSignals []RankedSignal
	// ERMModules ranks modules by non-weighted relative permeability
	// P̄^M (Eq. 3), descending: "the higher the error permeability
	// values of a module, the higher the probability of subsequent
	// modules being subjected to propagating errors ... it may be more
	// cost effective to place ERM's in those modules".
	ERMModules []RankedModule
	// BarrierModules are modules that receive system input signals;
	// per OB6, recovery mechanisms there form a barrier to errors
	// coming in from external data sources.
	BarrierModules []string
	// CriticalSignals are the signals appearing on every non-zero
	// propagation path of every backtrack tree (OB5): eliminating
	// errors there protects the system outputs entirely (given total
	// recovery success).
	CriticalSignals []string
	// LowExposureSignals are signals whose exposure is zero although
	// they lie on the topology — locations where even a very efficient
	// EDM would seldom be exercised (the OB3 cost-effectiveness
	// warning).
	LowExposureSignals []string
}

// Advise runs the full Section 5 analysis on a permeability matrix.
func Advise(m *Matrix) (*Advice, error) {
	sys := m.System()
	g, err := NewGraph(m)
	if err != nil {
		return nil, err
	}

	adv := &Advice{}

	for _, name := range sys.ModuleNames() {
		if _, xbar, ok := g.Exposure(name); ok {
			adv.EDMModules = append(adv.EDMModules, RankedModule{Module: name, Score: xbar})
		}
		nw, err := m.NonWeightedRelativePermeability(name)
		if err != nil {
			return nil, err
		}
		adv.ERMModules = append(adv.ERMModules, RankedModule{Module: name, Score: nw})
	}
	sortModules(adv.EDMModules)
	sortModules(adv.ERMModules)

	exposures, err := SignalExposures(m)
	if err != nil {
		return nil, err
	}
	for _, se := range exposures {
		if se.Exposure > 0 {
			adv.EDMSignals = append(adv.EDMSignals, RankedSignal{Signal: se.Signal, Score: se.Exposure})
		} else if !sys.IsSystemInput(se.Signal) {
			adv.LowExposureSignals = append(adv.LowExposureSignals, se.Signal)
		}
	}
	sort.Strings(adv.LowExposureSignals)

	// Barrier modules: receive at least one system input signal (OB6).
	seen := make(map[string]bool)
	for _, in := range sys.SystemInputs() {
		for _, r := range sys.Receivers(in) {
			if !seen[r.Module] {
				seen[r.Module] = true
				adv.BarrierModules = append(adv.BarrierModules, r.Module)
			}
		}
	}
	sort.Strings(adv.BarrierModules)

	// Critical signals: on every non-zero path of every backtrack tree.
	forest, err := BacktrackForest(m)
	if err != nil {
		return nil, err
	}
	critical := make(map[string]bool)
	first := true
	for _, tree := range forest {
		paths := tree.NonZeroPaths()
		if len(paths) == 0 {
			continue
		}
		// Include the tree root itself: the system output is trivially
		// on all of its own paths but is excluded per OB4 (a hardware
		// register; errors there come from its driving signal).
		onAll := SignalsOnEveryPath(paths)
		if first {
			for _, s := range onAll {
				critical[s] = true
			}
			first = false
			continue
		}
		next := make(map[string]bool)
		for _, s := range onAll {
			if critical[s] {
				next[s] = true
			}
		}
		critical = next
	}
	for s := range critical {
		// System inputs appear on full-length paths but are external
		// sources, not placement candidates.
		if !sys.IsSystemInput(s) {
			adv.CriticalSignals = append(adv.CriticalSignals, s)
		}
	}
	sort.Strings(adv.CriticalSignals)

	return adv, nil
}

// sortModules orders by descending score, ties by name.
func sortModules(ms []RankedModule) {
	sort.Slice(ms, func(a, b int) bool {
		if ms[a].Score != ms[b].Score {
			return ms[a].Score > ms[b].Score
		}
		return ms[a].Module < ms[b].Module
	})
}

// Summary renders the advice in a compact human-readable form.
func (a *Advice) Summary() string {
	s := "EDM module candidates (by non-weighted exposure):\n"
	for i, m := range a.EDMModules {
		s += fmt.Sprintf("  %d. %-10s X̄=%.3f\n", i+1, m.Module, m.Score)
	}
	s += "EDM signal candidates (by signal exposure):\n"
	for i, sig := range a.EDMSignals {
		s += fmt.Sprintf("  %d. %-12s X^S=%.3f\n", i+1, sig.Signal, sig.Score)
	}
	s += "ERM module candidates (by non-weighted relative permeability):\n"
	for i, m := range a.ERMModules {
		s += fmt.Sprintf("  %d. %-10s P̄=%.3f\n", i+1, m.Module, m.Score)
	}
	s += fmt.Sprintf("Barrier modules (receive system inputs): %v\n", a.BarrierModules)
	s += fmt.Sprintf("Critical signals (on every non-zero path): %v\n", a.CriticalSignals)
	s += fmt.Sprintf("Low-exposure signals (poor EDM value): %v\n", a.LowExposureSignals)
	return s
}
