package core

import (
	"testing"
)

func fmecaRow(t *testing.T, rows []FMECARow, module, output string) FMECARow {
	t.Helper()
	for _, r := range rows {
		if r.Module == module && r.OutputSignal == output {
			return r
		}
	}
	t.Fatalf("no FMECA row for %s/%s", module, output)
	return FMECARow{}
}

func TestFMECASheet(t *testing.T) {
	m := exampleMatrix(t)
	rows, err := FMECA(m)
	if err != nil {
		t.Fatalf("FMECA: %v", err)
	}
	// One row per module output: A 1, B 2, C 1, D 1, E 1.
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}

	// The system output itself: severity 1 (it is the boundary).
	e := fmecaRow(t, rows, "E", "sysout")
	if !almostEqual(e.Severity, 1) {
		t.Errorf("severity of sysout failure = %v, want 1", e.Severity)
	}
	if !almostEqual(e.Occurrence, 1.6) {
		t.Errorf("occurrence of sysout = %v, want X^sysout = 1.6", e.Occurrence)
	}

	// d1 (output of D): single forward path d1 -> E -> sysout = 0.5.
	d := fmecaRow(t, rows, "D", "d1")
	if !almostEqual(d.Severity, 0.5) {
		t.Errorf("severity of d1 failure = %v, want 0.5", d.Severity)
	}
	if len(d.Effects) != 1 || d.Effects[0].SystemOutput != "sysout" {
		t.Errorf("effects of d1 = %+v", d.Effects)
	}
	if !almostEqual(d.Occurrence, 0.4) {
		t.Errorf("occurrence of d1 = %v, want X^d1 = 0.4", d.Occurrence)
	}
	if !almostEqual(d.Criticality, 0.5*0.4) {
		t.Errorf("criticality of d1 = %v, want 0.2", d.Criticality)
	}

	// a1 (output of A): strongest forward path a1->b2->sysout =
	// 0.6·0.9 = 0.54 (the bfb detour is weaker: 0.5·0.3·0.9 = 0.135).
	a := fmecaRow(t, rows, "A", "a1")
	if !almostEqual(a.Severity, 0.54) {
		t.Errorf("severity of a1 failure = %v, want 0.54", a.Severity)
	}

	// bfb (output 1 of B): forward through one pass of the loop:
	// bfb -> b2 (0.3) -> sysout (0.9) = 0.27.
	b := fmecaRow(t, rows, "B", "bfb")
	if !almostEqual(b.Severity, 0.27) {
		t.Errorf("severity of bfb failure = %v, want 0.27", b.Severity)
	}

	// Ordering: criticality non-increasing.
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Criticality < rows[i].Criticality {
			t.Errorf("criticality out of order at %d", i)
		}
	}
	// The boundary output ranks first in this matrix.
	if rows[0].OutputSignal != "sysout" {
		t.Errorf("top criticality row = %s/%s, want E/sysout", rows[0].Module, rows[0].OutputSignal)
	}
}

func TestFMECAZeroMatrix(t *testing.T) {
	m := NewMatrix(exampleMatrix(t).System())
	rows, err := FMECA(m)
	if err != nil {
		t.Fatalf("FMECA: %v", err)
	}
	for _, r := range rows {
		if r.OutputSignal == "sysout" {
			// The boundary output keeps severity 1 by definition.
			if !almostEqual(r.Severity, 1) {
				t.Errorf("sysout severity = %v, want 1", r.Severity)
			}
			continue
		}
		if r.Severity != 0 || r.Criticality != 0 {
			t.Errorf("zero matrix row %s/%s has severity %v", r.Module, r.OutputSignal, r.Severity)
		}
	}
}
