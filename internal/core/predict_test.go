package core

import "testing"

func TestPredictEndToEndChain(t *testing.T) {
	m := exampleMatrix(t)
	// extC reaches sysout through the single chain C->D->E:
	// 0.7·0.4·0.5 = 0.14.
	p, err := PredictEndToEnd(m, "extC", "sysout")
	if err != nil {
		t.Fatalf("PredictEndToEnd: %v", err)
	}
	if !almostEqual(p, 0.14) {
		t.Errorf("extC -> sysout = %v, want 0.14", p)
	}
	// extE is the direct pair.
	p, err = PredictEndToEnd(m, "extE", "sysout")
	if err != nil || !almostEqual(p, 0.2) {
		t.Errorf("extE -> sysout = %v, %v; want 0.2", p, err)
	}
}

func TestPredictEndToEndCombinesPaths(t *testing.T) {
	m := exampleMatrix(t)
	// extA reaches sysout via two terminal trace paths:
	//   extA->a1->b2->sysout          0.8·0.6·0.9 = 0.432
	//   extA->a1->bfb->b2'->sysout    0.8·0.5·0.3·0.9 = 0.108
	// combined: 1-(1-0.432)(1-0.108) = 0.493344.
	p, err := PredictEndToEnd(m, "extA", "sysout")
	if err != nil {
		t.Fatalf("PredictEndToEnd: %v", err)
	}
	want := 1 - (1-0.432)*(1-0.108)
	if !almostEqual(p, want) {
		t.Errorf("extA -> sysout = %v, want %v", p, want)
	}
}

func TestPredictEndToEndErrors(t *testing.T) {
	m := exampleMatrix(t)
	if _, err := PredictEndToEnd(m, "a1", "sysout"); err == nil {
		t.Error("prediction from internal signal succeeded")
	}
	if _, err := PredictEndToEnd(m, "extA", "b2"); err == nil {
		t.Error("prediction to internal signal succeeded")
	}
}

func TestPredictAllEndToEnd(t *testing.T) {
	m := exampleMatrix(t)
	preds, err := PredictAllEndToEnd(m, "sysout")
	if err != nil {
		t.Fatalf("PredictAllEndToEnd: %v", err)
	}
	if len(preds) != 3 {
		t.Fatalf("predictions = %d, want 3", len(preds))
	}
	byInput := map[string]float64{}
	for _, p := range preds {
		byInput[p.Input] = p.Predicted
		if p.Output != "sysout" {
			t.Errorf("prediction output = %q", p.Output)
		}
	}
	if !almostEqual(byInput["extC"], 0.14) || !almostEqual(byInput["extE"], 0.2) {
		t.Errorf("predictions = %v", byInput)
	}
}

// TestPredictMatchesCollapse: collapsing the entire system and reading
// the composite pair must agree with the backtrack-based end-to-end
// combination when the trace- and backtrack-tree path sets coincide
// (they do for this topology).
func TestPredictMatchesCollapse(t *testing.T) {
	m := exampleMatrix(t)
	collapsed, err := Collapse(m, []string{"A", "B", "C", "D", "E"}, "ALL")
	if err != nil {
		t.Fatal(err)
	}
	all, err := collapsed.System().Module("ALL")
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []string{"extA", "extC", "extE"} {
		pred, err := PredictEndToEnd(m, in, "sysout")
		if err != nil {
			t.Fatal(err)
		}
		v, err := collapsed.Value("ALL", all.InputIndex(in), 1)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(pred, v) {
			t.Errorf("%s: predict=%v collapse=%v", in, pred, v)
		}
	}
}
