package core

import (
	"sort"
)

// FMECARow is one row of the failure-mode worksheet derived from the
// permeability analysis. The paper's introduction positions
// propagation analysis as a complement to FMECA (Failure Mode Effect
// and Criticality Analysis); this sheet makes the mapping concrete:
// the failure mode is "erroneous value on one module output", the
// effects are the system outputs it can reach, and the criticality
// combines how exposed the source is with how strongly its errors
// reach the system boundary.
type FMECARow struct {
	// Module and OutputSignal identify the failure mode: an erroneous
	// value appearing on this output.
	Module       string
	OutputSignal string
	// Effects lists the system outputs reachable from this output,
	// with the highest single-path propagation weight to each.
	Effects []FMECAEffect
	// Severity is the maximum path weight from this output to any
	// system output: how strongly the failure reaches the system
	// boundary.
	Severity float64
	// Occurrence is the signal error exposure X^S of the output — the
	// relative likelihood of propagating errors appearing here (zero
	// for modules fed only by system inputs; their occurrence is
	// governed by external error rates, paper OB1).
	Occurrence float64
	// Criticality is Severity × Occurrence, the analysis-level RPN
	// used to order the worksheet.
	Criticality float64
}

// FMECAEffect is one reachable system output with the strongest
// propagation path weight toward it.
type FMECAEffect struct {
	SystemOutput  string
	MaxPathWeight float64
}

// FMECA builds the failure-mode worksheet for every module output,
// ordered by decreasing criticality (ties by module, then output
// signal). Severity uses the forward trace trees: for an output o the
// relevant propagation starts at o's consumers, so the weight of a
// path from o to a system output is the product of the pair
// permeabilities after o.
func FMECA(m *Matrix) ([]FMECARow, error) {
	sys := m.System()
	exposures, err := SignalExposures(m)
	if err != nil {
		return nil, err
	}
	exposure := make(map[string]float64, len(exposures))
	for _, se := range exposures {
		exposure[se.Signal] = se.Exposure
	}

	var rows []FMECARow
	for _, mod := range sys.Modules() {
		for _, out := range mod.Outputs {
			row := FMECARow{
				Module:       mod.Name,
				OutputSignal: out.Signal,
				Occurrence:   exposure[out.Signal],
			}
			best := make(map[string]float64)
			if sys.IsSystemOutput(out.Signal) {
				// The failure mode IS a system-boundary error.
				best[out.Signal] = 1
			}
			forwardPathWeights(m, out.Signal, best)
			for so, w := range best {
				row.Effects = append(row.Effects, FMECAEffect{SystemOutput: so, MaxPathWeight: w})
				if w > row.Severity {
					row.Severity = w
				}
			}
			sort.Slice(row.Effects, func(a, b int) bool {
				return row.Effects[a].SystemOutput < row.Effects[b].SystemOutput
			})
			row.Criticality = row.Severity * row.Occurrence
			rows = append(rows, row)
		}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		if rows[a].Criticality != rows[b].Criticality {
			return rows[a].Criticality > rows[b].Criticality
		}
		if rows[a].Module != rows[b].Module {
			return rows[a].Module < rows[b].Module
		}
		return rows[a].OutputSignal < rows[b].OutputSignal
	})
	return rows, nil
}

// forwardPathWeights accumulates, per reachable system output, the
// maximum product of pair permeabilities along forward paths starting
// at the consumers of the given signal, following the trace-tree
// feedback rules (each consuming input at most once per path).
func forwardPathWeights(m *Matrix, signal string, best map[string]float64) {
	sys := m.System()
	type frame struct {
		signal string
		weight float64
	}
	visited := map[[2]string]bool{} // (module, input signal) on the current path
	var walk func(f frame)
	walk = func(f frame) {
		for _, recv := range sys.Receivers(f.signal) {
			key := [2]string{recv.Module, f.signal}
			if visited[key] {
				continue
			}
			visited[key] = true
			mod, err := sys.Module(recv.Module)
			if err != nil {
				delete(visited, key)
				continue
			}
			for _, out := range mod.Outputs {
				w := f.weight * m.at(Pair{Module: mod.Name, In: recv.Index, Out: out.Index})
				if w == 0 {
					continue
				}
				if sys.IsSystemOutput(out.Signal) {
					if w > best[out.Signal] {
						best[out.Signal] = w
					}
					continue
				}
				walk(frame{signal: out.Signal, weight: w})
			}
			delete(visited, key)
		}
	}
	walk(frame{signal: signal, weight: 1})
}
