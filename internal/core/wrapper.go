package core

import (
	"fmt"
)

// ApplyWrapper returns a copy of the matrix in which every pair
// permeability of the named module is scaled by factor in [0,1] —
// modelling the addition of an error-containment wrapper around the
// module ("decreasing the error permeability of the module, for
// instance by using wrappers", Section 4.1 / [17]). Comparing the
// measures before and after quantifies what the wrapper buys at the
// system level; factor 0 models a perfect wrapper.
func ApplyWrapper(m *Matrix, module string, factor float64) (*Matrix, error) {
	if factor < 0 || factor > 1 {
		return nil, fmt.Errorf("core: wrapper factor %v out of [0,1]", factor)
	}
	mod, err := m.System().Module(module)
	if err != nil {
		return nil, err
	}
	out := NewMatrix(m.System())
	for _, pv := range m.Pairs() {
		v := pv.Value
		if pv.Pair.Module == mod.Name {
			v *= factor
		}
		if err := out.Set(pv.Pair.Module, pv.Pair.In, pv.Pair.Out, v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WrapperEffect summarises what wrapping one module changes at the
// system level: the total non-zero backtrack path weight toward each
// system output, before and after.
type WrapperEffect struct {
	Module string
	Factor float64
	Output string
	Before float64
	After  float64
}

// Reduction is the relative drop of total path weight, 0..1.
func (w WrapperEffect) Reduction() float64 {
	if w.Before == 0 {
		return 0
	}
	return 1 - w.After/w.Before
}

// EvaluateWrapper computes the WrapperEffect of wrapping the module
// for every system output.
func EvaluateWrapper(m *Matrix, module string, factor float64) ([]WrapperEffect, error) {
	wrapped, err := ApplyWrapper(m, module, factor)
	if err != nil {
		return nil, err
	}
	var out []WrapperEffect
	for _, output := range m.System().SystemOutputs() {
		before, err := totalPathWeight(m, output)
		if err != nil {
			return nil, err
		}
		after, err := totalPathWeight(wrapped, output)
		if err != nil {
			return nil, err
		}
		out = append(out, WrapperEffect{
			Module: module, Factor: factor, Output: output,
			Before: before, After: after,
		})
	}
	return out, nil
}

// totalPathWeight sums the backtrack-path weights toward one output.
func totalPathWeight(m *Matrix, output string) (float64, error) {
	tree, err := BacktrackTree(m, output)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, p := range tree.Paths() {
		sum += p.Weight()
	}
	return sum, nil
}
