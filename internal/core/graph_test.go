package core

import (
	"testing"

	"propane/internal/model"
)

func TestGraphArcs(t *testing.T) {
	m := exampleMatrix(t)
	g, err := NewGraph(m)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	arcs := g.Arcs()
	// Expected arcs: A->B via a1 (1 pair), B->B via bfb (2 pairs),
	// C->D via c1 (1), B->E via b2 (2), D->E via d1 (1). Total 7.
	if len(arcs) != 7 {
		t.Fatalf("len(Arcs()) = %d, want 7", len(arcs))
	}
	type key struct {
		from, to string
		pair     Pair
	}
	want := map[key]float64{
		{"A", "B", Pair{"A", 1, 1}}: 0.8,
		{"B", "B", Pair{"B", 1, 1}}: 0.5,
		{"B", "B", Pair{"B", 2, 1}}: 0.9,
		{"C", "D", Pair{"C", 1, 1}}: 0.7,
		{"B", "E", Pair{"B", 1, 2}}: 0.6,
		{"B", "E", Pair{"B", 2, 2}}: 0.3,
		{"D", "E", Pair{"D", 1, 1}}: 0.4,
	}
	for _, a := range arcs {
		k := key{a.From, a.To, a.Pair}
		w, ok := want[k]
		if !ok {
			t.Errorf("unexpected arc %+v", a)
			continue
		}
		if !almostEqual(a.Weight, w) {
			t.Errorf("arc %+v weight = %v, want %v", k, a.Weight, w)
		}
		delete(want, k)
	}
	for k := range want {
		t.Errorf("missing arc %+v", k)
	}
}

func TestGraphIncomingOutgoing(t *testing.T) {
	m := exampleMatrix(t)
	g, err := NewGraph(m)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	if got := len(g.Incoming("B")); got != 3 {
		t.Errorf("len(Incoming(B)) = %d, want 3", got)
	}
	if got := len(g.Incoming("A")); got != 0 {
		t.Errorf("len(Incoming(A)) = %d, want 0", got)
	}
	// Outgoing from B: 2 feedback arcs into B plus 2 arcs into E.
	if got := len(g.Outgoing("B")); got != 4 {
		t.Errorf("len(Outgoing(B)) = %d, want 4", got)
	}
	if got := len(g.Outgoing("E")); got != 0 {
		t.Errorf("len(Outgoing(E)) = %d, want 0", got)
	}
}

func TestGraphExposure(t *testing.T) {
	m := exampleMatrix(t)
	g, err := NewGraph(m)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	tests := []struct {
		module string
		wantX  float64
		wantXb float64
		wantOK bool
	}{
		{"A", 0, 0, false},
		{"C", 0, 0, false},
		{"B", 2.2 / 3, 2.2, true},
		{"D", 0.7, 0.7, true},
		{"E", 1.3 / 3, 1.3, true},
	}
	for _, tt := range tests {
		t.Run(tt.module, func(t *testing.T) {
			x, xb, ok := g.Exposure(tt.module)
			if ok != tt.wantOK {
				t.Fatalf("Exposure(%s) ok = %v, want %v", tt.module, ok, tt.wantOK)
			}
			if !ok {
				return
			}
			if !almostEqual(x, tt.wantX) {
				t.Errorf("X^%s = %v, want %v", tt.module, x, tt.wantX)
			}
			if !almostEqual(xb, tt.wantXb) {
				t.Errorf("X̄^%s = %v, want %v", tt.module, xb, tt.wantXb)
			}
		})
	}
}

func TestGraphMutationIsolation(t *testing.T) {
	m := exampleMatrix(t)
	g, err := NewGraph(m)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	in := g.Incoming("B")
	in[0].Weight = 123
	if g.Incoming("B")[0].Weight == 123 {
		t.Error("mutating Incoming() result affected the graph")
	}
	arcs := g.Arcs()
	arcs[0].Weight = 456
	if g.Arcs()[0].Weight == 456 {
		t.Error("mutating Arcs() result affected the graph")
	}
}

// TestExposureZeroWeightArcsStillCount checks that N in Eq. 4 counts
// arcs, not non-zero arcs: zero-weight arcs dilute the mean exposure.
func TestExposureZeroWeightArcsStillCount(t *testing.T) {
	m := NewMatrix(model.PaperExampleSystem())
	// Only one of the three arcs into E carries weight.
	if err := m.Set("B", 1, 2, 0.9); err != nil {
		t.Fatal(err)
	}
	g, err := NewGraph(m)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	x, xb, ok := g.Exposure("E")
	if !ok {
		t.Fatal("Exposure(E) not ok")
	}
	if !almostEqual(xb, 0.9) {
		t.Errorf("X̄^E = %v, want 0.9", xb)
	}
	if !almostEqual(x, 0.3) {
		t.Errorf("X^E = %v, want 0.3 (mean over 3 arcs)", x)
	}
}
