// Package inject implements SWIFI (SoftWare Implemented Fault
// Injection) in the style of the paper's PROPANE tool (Section 6):
// errors are introduced into the input signals of software modules via
// high-level software traps that fire when the instrumented input read
// is reached during execution. One error is injected into one input
// signal per injection run.
package inject

import (
	"fmt"

	"propane/internal/model"
	"propane/internal/sim"
)

// ErrorModel transforms a correct signal value into a corrupted one.
// The paper's campaign uses single bit-flips; further models are
// provided for the error-model ablation (the paper's Section 6 notes
// that the measures are mainly used relatively, so the realism of the
// error model matters less as long as orderings are maintained —
// which the ablation checks).
type ErrorModel interface {
	// Mutate returns the corrupted value for a correct value.
	Mutate(v uint16) uint16
	// String describes the model, e.g. "bitflip(3)".
	String() string
}

// BitFlip inverts a single bit (the paper's error model).
type BitFlip struct {
	// Bit is the bit position to flip, 0..15.
	Bit uint
}

// Mutate implements ErrorModel.
func (b BitFlip) Mutate(v uint16) uint16 { return v ^ (1 << (b.Bit & 15)) }

// String implements ErrorModel.
func (b BitFlip) String() string { return fmt.Sprintf("bitflip(%d)", b.Bit) }

// StuckAt forces a single bit to a fixed level at the moment of
// injection.
type StuckAt struct {
	// Bit is the bit position, 0..15.
	Bit uint
	// One selects stuck-at-1; false is stuck-at-0.
	One bool
}

// Mutate implements ErrorModel.
func (s StuckAt) Mutate(v uint16) uint16 {
	mask := uint16(1) << (s.Bit & 15)
	if s.One {
		return v | mask
	}
	return v &^ mask
}

// String implements ErrorModel.
func (s StuckAt) String() string {
	level := 0
	if s.One {
		level = 1
	}
	return fmt.Sprintf("stuckat(%d=%d)", s.Bit, level)
}

// Replace substitutes the whole value (a gross data error, e.g. a
// wild pointer write).
type Replace struct {
	// Value is the corrupted value to substitute.
	Value uint16
}

// Mutate implements ErrorModel.
func (r Replace) Mutate(uint16) uint16 { return r.Value }

// String implements ErrorModel.
func (r Replace) String() string { return fmt.Sprintf("replace(%d)", r.Value) }

// Offset adds a signed delta with 16-bit wrap-around (an arithmetic
// error).
type Offset struct {
	// Delta is added to the value modulo 2^16.
	Delta int32
}

// Mutate implements ErrorModel.
func (o Offset) Mutate(v uint16) uint16 { return uint16(int32(v) + o.Delta) }

// String implements ErrorModel.
func (o Offset) String() string { return fmt.Sprintf("offset(%+d)", o.Delta) }

// Injection describes one experiment: corrupt the named input signal
// of the named module with the given error model, at the first
// instrumented read at or after time At.
type Injection struct {
	Module string
	Signal string
	At     sim.Millis
	Model  ErrorModel
}

// String renders the injection compactly.
func (inj Injection) String() string {
	return fmt.Sprintf("%s@%s t=%dms %s", inj.Signal, inj.Module, inj.At, inj.Model)
}

// Trap is a one-shot armed trap implementing the injection. Wire its
// Hook into the target's instrumented reads; the trap fires at the
// first matching read at or after the injection time, corrupting the
// signal variable in place so the module sees the corrupted value on
// this very read (and other consumers see it until the producer
// overwrites it — SWIFI memory-corruption semantics).
type Trap struct {
	inj     Injection
	fired   bool
	firedAt sim.Millis
}

// NewTrap arms a trap for the injection.
func NewTrap(inj Injection) *Trap {
	return &Trap{inj: inj}
}

// Hook returns the sim.ReadHook to install on the target.
func (t *Trap) Hook() sim.ReadHook {
	return func(module, signal string, sig *sim.Signal, now sim.Millis) {
		if t.fired || now < t.inj.At || module != t.inj.Module || signal != t.inj.Signal {
			return
		}
		sig.Write(t.inj.Model.Mutate(sig.Read()))
		t.fired = true
		t.firedAt = now
	}
}

// Fired reports whether the trap has fired and at what simulated time.
func (t *Trap) Fired() (sim.Millis, bool) {
	return t.firedAt, t.fired
}

// Injection returns the experiment description the trap was armed
// with.
func (t *Trap) Injection() Injection { return t.inj }

// PersistentTrap corrupts the signal on *every* matching read from the
// injection time until At+Duration (inclusive) — an intermittent or,
// with a duration covering the rest of the run, permanent fault at the
// module boundary. The paper injects transients only; the fault-
// duration ablation uses this trap to probe how estimates shift when
// errors persist (e.g. a stuck sensor register), which defeats
// transient-oriented defences such as median filtering.
type PersistentTrap struct {
	inj      Injection
	duration sim.Millis
	fired    bool
	firedAt  sim.Millis
}

// NewPersistentTrap arms a persistent trap active for duration
// milliseconds from the injection time.
func NewPersistentTrap(inj Injection, duration sim.Millis) *PersistentTrap {
	return &PersistentTrap{inj: inj, duration: duration}
}

// Hook returns the sim.ReadHook to install on the target.
func (t *PersistentTrap) Hook() sim.ReadHook {
	return func(module, signal string, sig *sim.Signal, now sim.Millis) {
		if now < t.inj.At || now > t.inj.At+t.duration ||
			module != t.inj.Module || signal != t.inj.Signal {
			return
		}
		sig.Write(t.inj.Model.Mutate(sig.Read()))
		if !t.fired {
			t.fired = true
			t.firedAt = now
		}
	}
}

// Fired reports whether the trap has fired at least once and when it
// first did.
func (t *PersistentTrap) Fired() (sim.Millis, bool) {
	return t.firedAt, t.fired
}

// Injection returns the experiment description the trap was armed
// with.
func (t *PersistentTrap) Injection() Injection { return t.inj }

// BitFlipPlan expands the paper's campaign for one system topology:
// for every module, every input signal, every injection time and
// every bit position, one Injection. With the paper's parameters (16
// bits, 10 times, and 25 test cases handled by the caller) this yields
// 16·10 = 160 injections per input signal per test case.
func BitFlipPlan(sys *model.System, times []sim.Millis, bits []uint) []Injection {
	var plan []Injection
	for _, mod := range sys.Modules() {
		for _, in := range mod.Inputs {
			for _, at := range times {
				for _, bit := range bits {
					plan = append(plan, Injection{
						Module: mod.Name,
						Signal: in.Signal,
						At:     at,
						Model:  BitFlip{Bit: bit},
					})
				}
			}
		}
	}
	return plan
}

// ModelPlan expands a campaign like BitFlipPlan but with an arbitrary
// list of error models applied at each (module, input, time) point.
func ModelPlan(sys *model.System, times []sim.Millis, models []ErrorModel) []Injection {
	var plan []Injection
	for _, mod := range sys.Modules() {
		for _, in := range mod.Inputs {
			for _, at := range times {
				for _, m := range models {
					plan = append(plan, Injection{
						Module: mod.Name,
						Signal: in.Signal,
						At:     at,
						Model:  m,
					})
				}
			}
		}
	}
	return plan
}

// PaperTimes returns the paper's ten injection instants: half-second
// intervals from 0.5 s to 5.0 s after the start of the arrestment.
func PaperTimes() []sim.Millis {
	times := make([]sim.Millis, 10)
	for i := range times {
		times[i] = sim.Millis(500 * (i + 1))
	}
	return times
}

// AllBits returns bit positions 0..15 (the paper flips each bit of the
// 16-bit input signals).
func AllBits() []uint {
	bits := make([]uint, 16)
	for i := range bits {
		bits[i] = uint(i)
	}
	return bits
}
