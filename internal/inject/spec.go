package inject

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec renders an error model in the machine-readable syntax shared
// by experiment-description files (internal/expfile) and campaign
// journals (internal/runner): "bitflip:N", "stuckat0:N", "stuckat1:N",
// "replace:V" and "offset:D". Unlike String, the rendering
// round-trips through ParseSpec.
func Spec(m ErrorModel) (string, error) {
	switch m := m.(type) {
	case BitFlip:
		return fmt.Sprintf("bitflip:%d", m.Bit), nil
	case StuckAt:
		if m.One {
			return fmt.Sprintf("stuckat1:%d", m.Bit), nil
		}
		return fmt.Sprintf("stuckat0:%d", m.Bit), nil
	case Replace:
		return fmt.Sprintf("replace:%d", m.Value), nil
	case Offset:
		return fmt.Sprintf("offset:%d", m.Delta), nil
	default:
		return "", fmt.Errorf("inject: model %s has no spec syntax", m)
	}
}

// ParseSpec decodes a Spec rendering back into its error model.
func ParseSpec(spec string) (ErrorModel, error) {
	kind, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("inject: malformed model %q (want kind:arg)", spec)
	}
	n, err := strconv.ParseInt(arg, 10, 32)
	if err != nil {
		return nil, fmt.Errorf("inject: model %q: %w", spec, err)
	}
	switch kind {
	case "bitflip":
		if n < 0 || n > 15 {
			return nil, fmt.Errorf("inject: model %q: bit out of range", spec)
		}
		return BitFlip{Bit: uint(n)}, nil
	case "stuckat0", "stuckat1":
		if n < 0 || n > 15 {
			return nil, fmt.Errorf("inject: model %q: bit out of range", spec)
		}
		return StuckAt{Bit: uint(n), One: kind == "stuckat1"}, nil
	case "replace":
		if n < 0 || n > 65535 {
			return nil, fmt.Errorf("inject: model %q: value out of range", spec)
		}
		return Replace{Value: uint16(n)}, nil
	case "offset":
		return Offset{Delta: int32(n)}, nil
	default:
		return nil, fmt.Errorf("inject: unknown model kind %q", kind)
	}
}
