package inject

import "testing"

func TestSpecRoundTrip(t *testing.T) {
	models := []ErrorModel{
		BitFlip{Bit: 0},
		BitFlip{Bit: 15},
		StuckAt{Bit: 3},
		StuckAt{Bit: 7, One: true},
		Replace{Value: 0},
		Replace{Value: 65535},
		Offset{Delta: -129},
		Offset{Delta: 77},
	}
	for _, m := range models {
		spec, err := Spec(m)
		if err != nil {
			t.Fatalf("Spec(%v): %v", m, err)
		}
		back, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		if back != m {
			t.Errorf("round trip %v -> %q -> %v", m, spec, back)
		}
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"", "bitflip", "bitflip:", "bitflip:16", "bitflip:-1", "bitflip:x",
		"stuckat0:99", "stuckat2:1", "replace:65536", "replace:-1", "warp:3",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted garbage", spec)
		}
	}
}

type customModel struct{}

func (customModel) Mutate(v uint16) uint16 { return v }
func (customModel) String() string         { return "custom" }

func TestSpecRejectsUnknownModel(t *testing.T) {
	if _, err := Spec(customModel{}); err == nil {
		t.Error("Spec accepted a model with no spec syntax")
	}
}
