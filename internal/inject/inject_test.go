package inject

import (
	"testing"
	"testing/quick"

	"propane/internal/model"
	"propane/internal/sim"
)

func TestBitFlipMutate(t *testing.T) {
	tests := []struct {
		bit  uint
		in   uint16
		want uint16
	}{
		{0, 0x0000, 0x0001},
		{0, 0x0001, 0x0000},
		{15, 0x0000, 0x8000},
		{7, 0xFFFF, 0xFF7F},
	}
	for _, tt := range tests {
		if got := (BitFlip{Bit: tt.bit}).Mutate(tt.in); got != tt.want {
			t.Errorf("BitFlip(%d).Mutate(%#x) = %#x, want %#x", tt.bit, tt.in, got, tt.want)
		}
	}
}

func TestBitFlipAlwaysChangesValue(t *testing.T) {
	prop := func(v uint16, bit uint8) bool {
		m := BitFlip{Bit: uint(bit % 16)}
		return m.Mutate(v) != v && m.Mutate(m.Mutate(v)) == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStuckAtMutate(t *testing.T) {
	if got := (StuckAt{Bit: 3, One: true}).Mutate(0); got != 0x0008 {
		t.Errorf("stuck-at-1 bit 3 of 0 = %#x, want 0x0008", got)
	}
	if got := (StuckAt{Bit: 3, One: false}).Mutate(0xFFFF); got != 0xFFF7 {
		t.Errorf("stuck-at-0 bit 3 of 0xFFFF = %#x, want 0xFFF7", got)
	}
	// Stuck-at is idempotent (unlike a flip).
	m := StuckAt{Bit: 5, One: true}
	if m.Mutate(m.Mutate(0)) != m.Mutate(0) {
		t.Error("StuckAt not idempotent")
	}
}

func TestReplaceAndOffset(t *testing.T) {
	if got := (Replace{Value: 0xDEAD}).Mutate(7); got != 0xDEAD {
		t.Errorf("Replace = %#x, want 0xDEAD", got)
	}
	if got := (Offset{Delta: -3}).Mutate(1); got != 0xFFFE {
		t.Errorf("Offset(-3).Mutate(1) = %#x, want 0xFFFE (wrap)", got)
	}
	if got := (Offset{Delta: 10}).Mutate(0xFFFB); got != 5 {
		t.Errorf("Offset(10).Mutate(0xFFFB) = %d, want 5 (wrap)", got)
	}
}

func TestModelStrings(t *testing.T) {
	tests := []struct {
		m    ErrorModel
		want string
	}{
		{BitFlip{Bit: 3}, "bitflip(3)"},
		{StuckAt{Bit: 2, One: true}, "stuckat(2=1)"},
		{StuckAt{Bit: 2}, "stuckat(2=0)"},
		{Replace{Value: 9}, "replace(9)"},
		{Offset{Delta: -1}, "offset(-1)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestTrapFiresOnceAtMatchingRead(t *testing.T) {
	bus := sim.NewBus()
	sig := bus.Register("pulscnt")
	sig.Write(0x0100)

	trap := NewTrap(Injection{Module: "CALC", Signal: "pulscnt", At: 100, Model: BitFlip{Bit: 0}})
	hook := trap.Hook()

	// Wrong module, wrong signal, too early: no fire.
	hook("V_REG", "pulscnt", sig, 150)
	hook("CALC", "SetValue", sig, 150)
	hook("CALC", "pulscnt", sig, 99)
	if _, fired := trap.Fired(); fired {
		t.Fatal("trap fired prematurely")
	}
	if sig.Read() != 0x0100 {
		t.Fatal("signal corrupted before trap fired")
	}

	// Matching read at/after the arm time: fires exactly once.
	hook("CALC", "pulscnt", sig, 101)
	at, fired := trap.Fired()
	if !fired || at != 101 {
		t.Fatalf("Fired() = %d,%v; want 101,true", at, fired)
	}
	if sig.Read() != 0x0101 {
		t.Errorf("signal after trap = %#x, want 0x0101", sig.Read())
	}
	// One-shot: a later read does not corrupt again.
	hook("CALC", "pulscnt", sig, 102)
	if sig.Read() != 0x0101 {
		t.Errorf("trap fired twice: %#x", sig.Read())
	}
}

func TestTrapInjectionAccessor(t *testing.T) {
	inj := Injection{Module: "M", Signal: "s", At: 5, Model: BitFlip{Bit: 2}}
	trap := NewTrap(inj)
	if got := trap.Injection(); got.Module != "M" || got.Signal != "s" || got.At != 5 {
		t.Errorf("Injection() = %+v, want %+v", got, inj)
	}
	if inj.String() != "s@M t=5ms bitflip(2)" {
		t.Errorf("Injection.String() = %q", inj.String())
	}
}

func TestBitFlipPlan(t *testing.T) {
	sys := model.PaperExampleSystem()
	times := []sim.Millis{100, 200}
	bits := []uint{0, 7, 15}
	plan := BitFlipPlan(sys, times, bits)
	// Inputs: A 1, B 2, C 1, D 1, E 3 = 8 input ports; 8·2·3 = 48.
	if len(plan) != 48 {
		t.Fatalf("plan size = %d, want 48", len(plan))
	}
	// Every entry targets a real module input.
	for _, inj := range plan {
		mod, err := sys.Module(inj.Module)
		if err != nil {
			t.Fatalf("plan references unknown module %s", inj.Module)
		}
		if mod.InputIndex(inj.Signal) == 0 {
			t.Errorf("plan injects %s into %s, which has no such input", inj.Signal, inj.Module)
		}
	}
}

func TestModelPlan(t *testing.T) {
	sys := model.PaperExampleSystem()
	models := []ErrorModel{Replace{Value: 0}, Offset{Delta: 100}}
	plan := ModelPlan(sys, []sim.Millis{50}, models)
	if len(plan) != 8*2 {
		t.Fatalf("plan size = %d, want 16", len(plan))
	}
}

func TestPaperParameters(t *testing.T) {
	times := PaperTimes()
	if len(times) != 10 || times[0] != 500 || times[9] != 5000 {
		t.Errorf("PaperTimes() = %v, want 500..5000 step 500", times)
	}
	bits := AllBits()
	if len(bits) != 16 || bits[0] != 0 || bits[15] != 15 {
		t.Errorf("AllBits() = %v", bits)
	}
}

func TestPersistentTrapWindow(t *testing.T) {
	bus := sim.NewBus()
	sig := bus.Register("ADC")
	trap := NewPersistentTrap(
		Injection{Module: "PRES_S", Signal: "ADC", At: 100, Model: StuckAt{Bit: 15, One: true}},
		50,
	)
	hook := trap.Hook()

	sig.Write(0)
	hook("PRES_S", "ADC", sig, 99) // before the window
	if sig.Read() != 0 {
		t.Fatal("corrupted before the window")
	}
	hook("PRES_S", "ADC", sig, 100) // window start
	if sig.Read() != 0x8000 {
		t.Fatalf("not corrupted at window start: %#x", sig.Read())
	}
	at, fired := trap.Fired()
	if !fired || at != 100 {
		t.Errorf("Fired() = %d,%v; want 100,true", at, fired)
	}
	// Producer refreshes, trap re-applies within the window.
	sig.Write(0x0010)
	hook("PRES_S", "ADC", sig, 150) // window end, inclusive
	if sig.Read() != 0x8010 {
		t.Errorf("not re-corrupted at window end: %#x", sig.Read())
	}
	sig.Write(0x0010)
	hook("PRES_S", "ADC", sig, 151) // past the window
	if sig.Read() != 0x0010 {
		t.Errorf("corrupted past the window: %#x", sig.Read())
	}
	// First-fired time is latched.
	if at, _ := trap.Fired(); at != 100 {
		t.Errorf("firedAt moved to %d", at)
	}
	// Wrong module/signal never fires.
	other := bus.Register("x")
	hook("OTHER", "ADC", other, 120)
	hook("PRES_S", "x", other, 120)
	if other.Read() != 0 {
		t.Error("persistent trap fired on wrong target")
	}
	if trap.Injection().Signal != "ADC" {
		t.Error("Injection() accessor broken")
	}
}
